//! Figure 4: maximum error of queries with different predicate
//! selectivities (25/50/75/100%), all answered by ONE materialized sample
//! per method (built for AQ3 / B2) — the sample-reuse experiment.

use cvopt_baselines::figure_methods;
use cvopt_core::SamplingProblem;

use crate::metrics::{relative_errors_all, ErrorSummary};
use crate::queries::{self, PaperQuery};
use crate::report::{pct, Report};
use crate::runner::draw_samples;
use crate::scale::{EvalData, Scale};

fn run_side(
    report: &mut Report,
    table: &cvopt_table::Table,
    base: &PaperQuery,
    variants: Vec<PaperQuery>,
    budget: usize,
    reps: u64,
) -> cvopt_core::Result<()> {
    let methods = figure_methods();
    let problem = SamplingProblem::multi(base.specs.clone(), budget);
    // Precompute ground truths per variant.
    let truths: Vec<(String, Vec<cvopt_table::QueryResult>)> = variants
        .iter()
        .map(|v| Ok((v.id.to_string(), v.query.execute(table)?)))
        .collect::<cvopt_core::Result<_>>()?;

    for method in &methods {
        let samples = draw_samples(table, method.as_ref(), &problem, reps)?;
        let mut row = vec![base.id.to_string(), method.name().to_string()];
        for (vi, variant) in variants.iter().enumerate() {
            let mut max_acc = 0.0;
            for sample in &samples {
                let est = cvopt_core::estimate::estimate(sample, &variant.query)?;
                let errors = relative_errors_all(&truths[vi].1, &est, 0.0);
                max_acc += ErrorSummary::from_errors(&errors).max;
            }
            row.push(pct(max_acc / samples.len().max(1) as f64));
        }
        report.push_row(row);
    }
    Ok(())
}

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let mut report = Report::new(
        "figure4",
        "Maximum error vs predicate selectivity, one materialized sample per method",
        vec![
            "Base".into(),
            "Method".into(),
            "25%".into(),
            "50%".into(),
            "75%".into(),
            "100%".into(),
        ],
    );

    run_side(
        &mut report,
        &data.openaq,
        &queries::aq3(),
        vec![
            queries::aq3_variant('a'),
            queries::aq3_variant('b'),
            queries::aq3_variant('c'),
            queries::aq3(),
        ],
        scale.openaq_budget(),
        scale.reps,
    )?;
    run_side(
        &mut report,
        &data.bikes,
        &queries::b2(),
        vec![
            queries::b2_variant('a'),
            queries::b2_variant('b'),
            queries::b2_variant('c'),
            queries::b2(),
        ],
        scale.bikes_budget(),
        scale.reps,
    )?;

    report.note("samples are optimized for the base query (AQ3/B2) and reused for all variants");
    report.note(
        "expected shape (paper Fig. 4): error falls as selectivity grows; CVOPT lowest per column",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn selectivity_helps_cvopt() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 8);
        let cvopt_aq3 = report.rows.iter().find(|r| r[0] == "AQ3" && r[1] == "CVOPT").unwrap();
        // 100% selectivity should not be worse than 25%.
        assert!(parse_pct(&cvopt_aq3[5]) <= parse_pct(&cvopt_aq3[2]) * 1.1);
    }
}

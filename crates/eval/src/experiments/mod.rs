//! One module per reproduced paper table/figure, plus ablations.
//!
//! Each `run(scale)` regenerates the rows/series the paper reports and
//! returns a [`Report`]. The `reproduce` binary in
//! `cvopt-bench` drives these.

pub mod ablations;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod table4;
pub mod table5;
pub mod table6;

use crate::report::Report;
use crate::scale::Scale;

/// Ids of all experiments, in paper order.
pub const ALL_IDS: [&str; 13] = [
    "figure1",
    "table4",
    "figure2",
    "figure3",
    "figure4",
    "table5",
    "figure5",
    "table6",
    "figure6",
    "ablation-capping",
    "ablation-variance",
    "ablation-minalloc",
    "ablation-lpnorm",
];

/// Run one experiment by id.
pub fn run_by_id(id: &str, scale: &Scale) -> cvopt_core::Result<Report> {
    match id {
        "figure1" => figure1::run(scale),
        "table4" => table4::run(scale),
        "figure2" => figure2::run(scale),
        "figure3" => figure3::run(scale),
        "figure4" => figure4::run(scale),
        "table5" => table5::run(scale),
        "figure5" => figure5::run(scale),
        "table6" => table6::run(scale),
        "figure6" => figure6::run(scale),
        "ablation-capping" => ablations::run_capping(scale),
        "ablation-variance" => ablations::run_variance(scale),
        "ablation-minalloc" => ablations::run_minalloc(scale),
        "ablation-lpnorm" => ablations::run_lpnorm(scale),
        other => Err(cvopt_core::CvError::invalid(format!(
            "unknown experiment id {other}; known: {ALL_IDS:?}"
        ))),
    }
}

/// Run every experiment.
pub fn run_all(scale: &Scale) -> cvopt_core::Result<Vec<Report>> {
    ALL_IDS.iter().map(|id| run_by_id(id, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_rejected() {
        assert!(run_by_id("figure99", &Scale::small()).is_err());
    }
}

//! Table 4: percentage average error for {SASG, MASG, SAMG, MAMG} queries
//! on OpenAQ (1% sample) and Bikes (5% sample), all five methods.

use cvopt_baselines::paper_methods;

use crate::queries;
use crate::report::{pct2, Report};
use crate::runner::evaluate_methods;
use crate::scale::{EvalData, Scale};

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let methods = paper_methods();

    // The paper's representative query per shape class.
    let openaq_queries = [queries::aq3(), queries::aq2(), queries::aq7(), queries::aq8()];
    let bikes_queries = [queries::b2(), queries::b1(), queries::b3(), queries::b4()];

    let mut headers = vec!["Method".to_string()];
    for q in &openaq_queries {
        headers.push(format!("AQ {}", q.kind.label()));
    }
    for q in &bikes_queries {
        headers.push(format!("B {}", q.kind.label()));
    }
    let mut report = Report::new(
        "table4",
        "Percentage average error per query shape (OpenAQ 1%, Bikes 5%)",
        headers,
    );

    // outcome[method][column]
    let mut cells: Vec<Vec<String>> = methods.iter().map(|m| vec![m.name().to_string()]).collect();
    for q in &openaq_queries {
        let outcomes =
            evaluate_methods(&data.openaq, &methods, q, scale.openaq_budget(), scale.reps)?;
        for (row, o) in cells.iter_mut().zip(&outcomes) {
            row.push(pct2(o.mean_error));
        }
    }
    for q in &bikes_queries {
        let outcomes =
            evaluate_methods(&data.bikes, &methods, q, scale.bikes_budget(), scale.reps)?;
        for (row, o) in cells.iter_mut().zip(&outcomes) {
            row.push(pct2(o.mean_error));
        }
    }
    for row in cells {
        report.push_row(row);
    }

    report.note(format!(
        "queries: OpenAQ SASG=AQ3 MASG=AQ2 SAMG=AQ7 MAMG=AQ8; Bikes SASG=B2 MASG=B1 SAMG=B3 MAMG=B4; {} reps",
        scale.reps
    ));
    report.note(
        "paper (Table 4), OpenAQ: Uniform 21.2/19.0/12.3/10.9, S+S 38.4/20.9/34.1/33.2, \
         CS 2.1/1.1/3.2/2.3, RL 3.0/1.8/4.5/3.6, CVOPT 1.6/0.8/2.4/2.2 (%)",
    );
    report.note(
        "paper (Table 4), Bikes: Uniform 14.7/9.0/24.0/20.5, S+S 10.9/15.6/15.3/15.2, \
         CS 4.8/2.6/6.9/5.2, RL 4.3/2.8/7.6/5.8, CVOPT 4.0/2.3/6.3/4.8 (%)",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn cvopt_leads_on_average_error() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 5);
        let row = |name: &str| report.rows.iter().find(|r| r[0] == name).unwrap().clone();
        let cvopt = row("CVOPT");
        let uniform = row("Uniform");
        // CVOPT must beat Uniform in every column; parity with CS/RL is
        // checked loosely elsewhere (stochastic at small scale).
        for col in 1..cvopt.len() {
            assert!(
                parse_pct(&cvopt[col]) <= parse_pct(&uniform[col]),
                "column {col}: CVOPT {} vs Uniform {}",
                cvopt[col],
                uniform[col]
            );
        }
    }
}

//! Figure 5: maximum error of CUBE group-by queries — AQ7/B3 (SAMG) and
//! AQ8/B4 (MAMG), Uniform vs CS vs RL vs CVOPT.

use cvopt_baselines::figure_methods;

use crate::queries;
use crate::report::{pct, Report};
use crate::runner::evaluate_methods;
use crate::scale::{EvalData, Scale};

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let methods = figure_methods();

    let mut headers = vec!["Method".to_string()];
    for id in ["AQ7 (SAMG)", "B3 (SAMG)", "AQ8 (MAMG)", "B4 (MAMG)"] {
        headers.push(id.to_string());
    }
    let mut report = Report::new("figure5", "Maximum error of CUBE group-by queries", headers);

    let mut cells: Vec<Vec<String>> = methods.iter().map(|m| vec![m.name().to_string()]).collect();

    for (query, on_openaq) in [
        (queries::aq7(), true),
        (queries::b3(), false),
        (queries::aq8(), true),
        (queries::b4(), false),
    ] {
        let (table, budget) = if on_openaq {
            (&data.openaq, scale.openaq_budget())
        } else {
            (&data.bikes, scale.bikes_budget())
        };
        let outcomes = evaluate_methods(table, &methods, &query, budget, scale.reps)?;
        for (row, o) in cells.iter_mut().zip(&outcomes) {
            row.push(pct(o.max_error));
        }
    }
    for row in cells {
        report.push_row(row);
    }

    report
        .note("cube over two attributes → 4 grouping sets per query; errors pooled over all sets");
    report.note("expected shape (paper Fig. 5): CVOPT ≪ Uniform and RL, consistently below CS");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn cvopt_beats_uniform_on_cubes() {
        let report = run(&Scale::small()).unwrap();
        let row = |name: &str| report.rows.iter().find(|r| r[0] == name).unwrap().clone();
        let cvopt = row("CVOPT");
        let uniform = row("Uniform");
        for col in 1..cvopt.len() {
            assert!(
                parse_pct(&cvopt[col]) <= parse_pct(&uniform[col]),
                "column {col}: CVOPT {} vs Uniform {}",
                cvopt[col],
                uniform[col]
            );
        }
    }
}

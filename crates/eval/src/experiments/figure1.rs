//! Figure 1: maximum relative error for MASG query AQ1 and SASG query AQ3
//! with a 1% sample (paper: Uniform 135%/100%, CS 53%/56%, RL 51%/51%,
//! CVOPT 9%/11%).

use cvopt_baselines::figure_methods;
use cvopt_core::SamplingProblem;

use crate::metrics::ErrorSummary;
use crate::queries::{self, aq1_errors, aq1_estimate, aq1_exact, aq1_year_query};
use crate::report::{pct, Report};
use crate::runner::{draw_samples, errors_per_rep, MethodOutcome};
use crate::scale::{EvalData, Scale};

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let budget = scale.openaq_budget();
    let methods = figure_methods();

    // AQ1: two-year derived answer per country.
    //
    // CVOPT gets the section-4.3 workload-weighted problem (stratify by
    // country x parameter x year, weight on the bc groups) — exploiting
    // scheduled-query knowledge is its documented capability. The baselines
    // have no mechanism for workload weights, so they receive their natural
    // input: the query's own GROUP BY (country) with the aggregated value
    // column. min_per_stratum = 0 on the workload problem: zero-weight
    // strata must not eat the budget.
    let aq1_truth = aq1_exact(&data.openaq);
    let aq1_level = aq1_year_query(2017).execute(&data.openaq)?.remove(0);
    let aq1_workload_problem =
        SamplingProblem::multi(queries::aq1_spec(&data.openaq)?, budget).with_min_per_stratum(0);
    let aq1_plain_problem = SamplingProblem::single(
        cvopt_core::QuerySpec::group_by(&["country"]).aggregate("value"),
        budget,
    );

    // AQ3: plain SASG query.
    let aq3 = queries::aq3();

    let mut report = Report::new(
        "figure1",
        "Maximum error for MASG query AQ1 and SASG query AQ3 (1% sample)",
        vec!["Method".into(), "AQ1 max err".into(), "AQ3 max err".into()],
    );

    for method in &methods {
        // AQ1.
        let aq1_problem =
            if method.name() == "CVOPT" { &aq1_workload_problem } else { &aq1_plain_problem };
        let samples = draw_samples(&data.openaq, method.as_ref(), aq1_problem, scale.reps)?;
        let mut aq1_max = 0.0;
        for sample in &samples {
            let est = aq1_estimate(sample)?;
            let errors = aq1_errors(&aq1_truth, &aq1_level, &est);
            aq1_max += ErrorSummary::from_errors(&errors).max;
        }
        aq1_max /= samples.len().max(1) as f64;

        // AQ3.
        let aq3_outcome = MethodOutcome::from_reps(
            method.name(),
            errors_per_rep(&data.openaq, method.as_ref(), &aq3, budget, scale.reps)?,
        );

        report.push_row(vec![method.name().to_string(), pct(aq1_max), pct(aq3_outcome.max_error)]);
    }

    report.note(format!(
        "OpenAQ {} rows, {:.2}% sample ({} rows), {} reps",
        data.openaq.num_rows(),
        100.0 * scale.openaq_rate,
        budget,
        scale.reps
    ));
    report.note("paper (Fig. 1): Uniform 135%/100%, CS 53%/56%, RL 51%/51%, CVOPT 9%/11%");
    report
        .note("AQ1 deltas are normalized by max(|true delta|, |2017 level|) per country/aggregate");
    report.note(
        "CVOPT's AQ1 sample uses section-4.3 workload weights (bc strata only); baselines \
         stratify on the query's GROUP BY (country) — see EXPERIMENTS.md",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_preserves_ordering() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 4);
        // CVOPT's AQ3 max error must beat Uniform's.
        let err_of = |name: &str, col: usize| -> f64 {
            let row = report.rows.iter().find(|r| r[0] == name).unwrap();
            row[col].trim_end_matches('%').parse::<f64>().unwrap()
        };
        assert!(err_of("CVOPT", 2) < err_of("Uniform", 2));
    }
}

//! Table 6: CPU time of sample precomputation and query processing for AQ1,
//! on OpenAQ and a duplicated `OpenAQ-Kx` (the paper's 25x / 1 TB run,
//! scaled to the harness).
//!
//! We report wall-clock seconds of this single-machine, in-memory engine —
//! absolute values are incomparable to the paper's 4-node Hive cluster, but
//! the *relative* shape is reproducible: stratified methods cost ~2 scans to
//! precompute (≈ a small multiple of one full query), and answering from a
//! 1% sample is orders of magnitude cheaper than the full table.

use std::time::Instant;

use cvopt_baselines::paper_methods;
use cvopt_core::SamplingProblem;
use cvopt_table::Table;

use crate::queries::{self, aq1_estimate, aq1_exact};
use crate::report::{secs, Report};
use crate::scale::{EvalData, Scale};

fn time_dataset(
    report: &mut Report,
    label: &str,
    table: &Table,
    rate: f64,
) -> cvopt_core::Result<()> {
    let budget = ((table.num_rows() as f64 * rate).round() as usize).max(1);

    // Full-data baseline: exact AQ1.
    let t0 = Instant::now();
    let exact = aq1_exact(table);
    let full_query = t0.elapsed().as_secs_f64();
    assert!(exact.num_groups() > 0);
    report.push_row(vec![
        label.to_string(),
        "Full Data".to_string(),
        "-".to_string(),
        secs(full_query),
    ]);

    let problem = SamplingProblem::multi(queries::aq1_spec(table)?, budget).with_min_per_stratum(0);
    for method in paper_methods() {
        let t0 = Instant::now();
        let sample = method.draw(table, &problem, 1)?;
        let precompute = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let est = aq1_estimate(&sample)?;
        let query_time = t0.elapsed().as_secs_f64();
        assert!(est.num_groups() > 0 || sample.len() < 100);

        report.push_row(vec![
            label.to_string(),
            method.name().to_string(),
            secs(precompute),
            secs(query_time),
        ]);
    }
    Ok(())
}

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let mut report = Report::new(
        "table6",
        "Wall-clock time for sample precomputation and AQ1 query processing",
        vec!["Dataset".into(), "Method".into(), "Precompute".into(), "Query".into()],
    );

    time_dataset(&mut report, "OpenAQ", &data.openaq, scale.openaq_rate)?;
    let big = data.openaq.repeat(scale.timing_repeat);
    let label = format!("OpenAQ-{}x", scale.timing_repeat);
    time_dataset(&mut report, &label, &big, scale.openaq_rate)?;

    report.note(format!(
        "rows: OpenAQ {}, {} {}; sample rate {:.2}%",
        data.openaq.num_rows(),
        label,
        big.num_rows(),
        100.0 * scale.openaq_rate
    ));
    report.note(
        "paper (Table 6, 40GB): full query 2881s; precompute Uniform 914s / CVOPT 4263s; \
         sample queries 40–60s (50–300x cheaper than full)",
    );
    report.note(
        "expected shape: precompute ≈ small multiple of one full query; sample query ≪ full query",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_recorded_for_all_methods() {
        let mut s = Scale::small();
        s.timing_repeat = 2;
        let report = run(&s).unwrap();
        // 2 datasets × (1 full + 5 methods).
        assert_eq!(report.rows.len(), 12);
        // Sample-based query must be faster than the full query on the
        // larger dataset (the headline claim).
        let parse = |cell: &str| cell.trim_end_matches('s').parse::<f64>().unwrap();
        let big_rows: Vec<_> = report.rows.iter().filter(|r| r[0].starts_with("OpenAQ-")).collect();
        let full = parse(&big_rows[0][3]);
        let cvopt = big_rows.iter().find(|r| r[1] == "CVOPT").unwrap();
        assert!(
            parse(&cvopt[3]) < full,
            "CVOPT sample query {} should beat full {}",
            cvopt[3],
            full
        );
    }
}

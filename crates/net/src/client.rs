//! Peer: a persistent client connection with retry and circuit breaking.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use crate::circuit::CircuitBreaker;
use crate::frame::{frame_len, read_frame, write_frame};
use crate::wire::{DecodeError, Request, Response};

/// Client-side failure talking to a shard server.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The peer answered with bytes that do not decode.
    Decode(DecodeError),
    /// The peer processed the request and reported an application error.
    Remote(String),
    /// The circuit breaker is open; the request was not attempted.
    CircuitOpen,
    /// The peer address did not resolve.
    BadAddress(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Decode(e) => write!(f, "{e}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
            NetError::CircuitOpen => write!(f, "circuit open: peer is unavailable"),
            NetError::BadAddress(addr) => write!(f, "bad peer address: {addr}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Timeouts and resilience knobs for a [`Peer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-frame read/write timeout.
    pub io_timeout: Duration,
    /// Transport retries after the first attempt (reconnecting in between).
    pub retries: u32,
    /// Consecutive transport failures before the circuit opens.
    pub circuit_threshold: u32,
    /// How long an open circuit rejects requests before probing again.
    pub circuit_cooldown: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            retries: 1,
            circuit_threshold: 3,
            circuit_cooldown: Duration::from_secs(5),
        }
    }
}

/// A persistent connection to one shard server.
///
/// The TCP stream is lazily (re)connected and serialized behind a mutex —
/// the engine's scatter passes issue one in-flight request per peer, so a
/// single keep-alive connection per peer is the right shape. A transport
/// failure drops the connection, retries once on a fresh one, and feeds the
/// circuit breaker; an application-level [`Response::Error`] proves the peer
/// is healthy and does not.
#[derive(Debug)]
pub struct Peer {
    addr: String,
    resolved: SocketAddr,
    config: NetConfig,
    conn: Mutex<Option<TcpStream>>,
    circuit: CircuitBreaker,
}

impl Peer {
    /// Peer with default configuration.
    pub fn connect(addr: impl Into<String>) -> Result<Peer, NetError> {
        Peer::with_config(addr, NetConfig::default())
    }

    /// Peer with explicit timeouts and circuit parameters. Resolves the
    /// address eagerly but connects lazily on first use.
    pub fn with_config(addr: impl Into<String>, config: NetConfig) -> Result<Peer, NetError> {
        let addr = addr.into();
        let resolved = addr
            .to_socket_addrs()
            .map_err(|_| NetError::BadAddress(addr.clone()))?
            .next()
            .ok_or_else(|| NetError::BadAddress(addr.clone()))?;
        let circuit = CircuitBreaker::new(config.circuit_threshold, config.circuit_cooldown);
        Ok(Peer { addr, resolved, config, conn: Mutex::new(None), circuit })
    }

    /// The address this peer was created with.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the circuit breaker is currently rejecting requests.
    pub fn circuit_open(&self) -> bool {
        self.circuit.is_open()
    }

    /// Send one request and wait for its response.
    ///
    /// Retries transport failures up to `config.retries` times on a fresh
    /// connection. Returns [`NetError::CircuitOpen`] without touching the
    /// network when the breaker is open.
    pub fn call(&self, request: &Request) -> Result<Response, NetError> {
        crate::record_request();
        if !self.circuit.admit() {
            return Err(NetError::CircuitOpen);
        }
        let payload = request.encode();
        let mut conn = self.conn.lock().unwrap();
        let mut last_err = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                crate::record_retry();
            }
            match self.try_call(&mut conn, &payload) {
                Ok(raw) => match Response::decode(&raw) {
                    Ok(Response::Error { message }) => {
                        // The peer is alive and answered; only the request
                        // was bad. Keep the circuit closed.
                        self.circuit.record_success();
                        return Err(NetError::Remote(message));
                    }
                    Ok(resp) => {
                        self.circuit.record_success();
                        return Ok(resp);
                    }
                    Err(e) => {
                        // Mis-framed bytes poison the stream; reconnect, but
                        // do not retry — the re-sent request would decode to
                        // the same garbage.
                        *conn = None;
                        if self.circuit.record_failure() {
                            crate::record_circuit_open();
                        }
                        return Err(NetError::Decode(e));
                    }
                },
                Err(e) => {
                    *conn = None;
                    last_err = Some(e);
                }
            }
        }
        if self.circuit.record_failure() {
            crate::record_circuit_open();
        }
        Err(NetError::Io(last_err.expect("at least one attempt ran")))
    }

    /// One attempt: connect if needed, write the frame, read the reply.
    fn try_call(&self, conn: &mut Option<TcpStream>, payload: &[u8]) -> Result<Vec<u8>, io::Error> {
        if conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.resolved, self.config.connect_timeout)?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            stream.set_nodelay(true)?;
            *conn = Some(stream);
        }
        let stream = conn.as_mut().expect("connection just established");
        let sent = write_frame(stream, payload)?;
        crate::record_bytes_sent(sent);
        let raw = read_frame(stream)?;
        crate::record_bytes_received(frame_len(&raw));
        Ok(raw)
    }
}

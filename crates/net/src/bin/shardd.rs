//! `cvopt-shardd` — a CVOPT shard server.
//!
//! ```text
//! cvopt-shardd [--addr 127.0.0.1] [--port 7070] [--workers N]
//! ```
//!
//! Starts empty; a coordinator registers shards over the wire (the
//! `Register` request) and then scatters pass requests at them. `--port 0`
//! binds an ephemeral port; the bound address is printed (and flushed) on
//! startup so scripts can scrape it.

use std::io::Write;

use cvopt_net::Shardd;

fn main() {
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 7070;
    let mut workers: usize = 4;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--port" => port = parse(&value("--port"), "--port"),
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--help" | "-h" => {
                println!(
                    "cvopt-shardd: a CVOPT shard server\n\n\
                     options:\n  \
                     --addr A     bind address (default 127.0.0.1)\n  \
                     --port P     bind port; 0 = ephemeral (default 7070)\n  \
                     --workers N  worker threads (default 4)"
                );
                return;
            }
            other => fail(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    if workers == 0 {
        fail("--workers must be at least 1");
    }

    let server = match Shardd::bind(format!("{addr}:{port}"), workers) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {addr}:{port}: {e}")),
    };
    println!("cvopt-shardd listening on {} ({workers} workers)", server.addr());
    std::io::stdout().flush().expect("flush stdout");

    // The server threads own all the work from here on; keep it alive.
    std::mem::forget(server);
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("invalid value '{value}' for {name}")))
}

fn fail(message: &str) -> ! {
    eprintln!("cvopt-shardd: {message}");
    std::process::exit(2);
}

//! Shardd: an embeddable shard server.
//!
//! A [`Shardd`] owns registered [`Table`] shards and answers pass requests
//! over TCP from a fixed worker pool. Every pass is answered through
//! [`LocalShard`] — the reference implementation of the shard-pass surface —
//! so a remote answer is bit-identical to what the same shard would produce
//! in process.
//!
//! Registration replaces any shard already stored under the same key, which
//! is what lets a coordinator re-register shards after a server restart.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use cvopt_table::{LocalShard, ShardReader, Table};

use crate::frame::{read_frame, write_frame};
use crate::wire::{Request, Response};

/// How often a parked connection or the accept loop re-checks the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

type ShardMap = Arc<Mutex<HashMap<String, Arc<LocalShard>>>>;

/// A running shard server.
///
/// Dropping (or calling [`Shardd::shutdown`]) stops the accept loop, unblocks
/// every open connection, and joins all threads.
#[derive(Debug)]
pub struct Shardd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Shardd {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections, answering requests on `workers` threads.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> io::Result<Shardd> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shards: ShardMap = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(workers.max(1) + 1);
        for worker in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            threads.push(
                thread::Builder::new()
                    .name(format!("shardd-worker-{worker}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(stream) => stream,
                            Err(_) => return,
                        };
                        serve_connection(stream, &shards, &stop);
                    })
                    .expect("spawn shardd worker"),
            );
        }

        {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            threads.push(
                thread::Builder::new()
                    .name("shardd-accept".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if let Ok(clone) = stream.try_clone() {
                                        conns.lock().unwrap().push(clone);
                                    }
                                    if tx.send(stream).is_err() {
                                        return;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    thread::sleep(POLL_INTERVAL);
                                }
                                Err(_) => thread::sleep(POLL_INTERVAL),
                            }
                        }
                        // Dropping `tx` here ends every idle worker's recv().
                    })
                    .expect("spawn shardd accept loop"),
            );
        }

        Ok(Shardd { addr: local_addr, stop, conns, threads })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock open connections, and join all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Shardd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answer frames on one connection until it closes or the server stops.
fn serve_connection(stream: TcpStream, shards: &ShardMap, stop: &AtomicBool) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut stream = stream;
    while !stop.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => handle_request(shards, request),
            Err(e) => Response::Error { message: e.to_string() },
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Execute one request against the shard map.
fn handle_request(shards: &ShardMap, request: Request) -> Response {
    match request {
        Request::Register { key, table } => {
            let rows = table.num_rows() as u64;
            let shard = Arc::new(LocalShard::new(table));
            shards.lock().unwrap().insert(key, shard);
            Response::Registered { rows }
        }
        Request::Health => {
            let mut keys: Vec<String> = shards.lock().unwrap().keys().cloned().collect();
            keys.sort();
            Response::Health { keys }
        }
        Request::Histogram { key, exprs } => with_shard(shards, &key, |shard| {
            let index = shard.group_index(&exprs)?;
            Ok(Response::Histogram { sizes: index.sizes().to_vec() })
        }),
        Request::ScatterWindow { key, exprs } => with_shard(shards, &key, |shard| {
            Ok(Response::Window { index: shard.group_index(&exprs)? })
        }),
        Request::Bitmap { key, predicate } => with_shard(shards, &key, |shard| {
            Ok(Response::Bitmap { bitmap: shard.predicate_bitmap(&predicate)? })
        }),
        Request::StatPartials { key, exprs } => with_shard(shards, &key, |shard| {
            Ok(Response::Partials { columns: shard.expr_values(&exprs)? })
        }),
        Request::Draw { key, rows } | Request::Gather { key, rows } => {
            with_shard(shards, &key, |shard| Ok(Response::Rows { table: shard.take_rows(&rows)? }))
        }
    }
}

/// Look up a shard and run `f`, folding lookup and pass errors into
/// [`Response::Error`].
fn with_shard(
    shards: &ShardMap,
    key: &str,
    f: impl FnOnce(&LocalShard) -> cvopt_table::Result<Response>,
) -> Response {
    let shard = shards.lock().unwrap().get(key).cloned();
    match shard {
        Some(shard) => match f(&shard) {
            Ok(response) => response,
            Err(e) => Response::Error { message: e.to_string() },
        },
        None => Response::Error { message: format!("no shard registered under key {key:?}") },
    }
}

/// Convenience for tests and smoke scripts: register `table` on a running
/// server via a temporary connection.
pub fn register_table(addr: &str, key: &str, table: &Table) -> Result<u64, crate::NetError> {
    let peer = crate::Peer::connect(addr)?;
    match peer.call(&Request::Register { key: key.to_string(), table: table.clone() })? {
        Response::Registered { rows } => Ok(rows),
        other => Err(crate::NetError::Remote(format!("unexpected response {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Peer;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn tiny_table() -> Table {
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Float64)]);
        for (k, v) in [("a", 1.0), ("b", 2.0), ("a", 3.0)] {
            b.push_row(&[Value::str(k), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn register_health_and_unknown_key() {
        let mut server = Shardd::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.addr().to_string();
        let rows = register_table(&addr, "t/0", &tiny_table()).unwrap();
        assert_eq!(rows, 3);

        let peer = Peer::connect(&addr).unwrap();
        match peer.call(&Request::Health).unwrap() {
            Response::Health { keys } => assert_eq!(keys, vec!["t/0".to_string()]),
            other => panic!("unexpected response {other:?}"),
        }

        // Unknown keys are application errors: the connection stays usable
        // and the circuit stays closed.
        let err = peer.call(&Request::Gather { key: "nope".into(), rows: vec![0] }).unwrap_err();
        assert!(matches!(err, crate::NetError::Remote(_)), "got {err}");
        assert!(!peer.circuit_open());
        assert!(peer.call(&Request::Health).is_ok());

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn gather_round_trips_rows() {
        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.addr().to_string();
        register_table(&addr, "t", &tiny_table()).unwrap();
        let peer = Peer::connect(&addr).unwrap();
        match peer.call(&Request::Gather { key: "t".into(), rows: vec![2, 0] }).unwrap() {
            Response::Rows { table } => {
                assert_eq!(table.num_rows(), 2);
                assert_eq!(format!("{:?}", table.row(0)), format!("{:?}", tiny_table().row(2)));
            }
            other => panic!("unexpected response {other:?}"),
        }
        server.shutdown();
    }
}

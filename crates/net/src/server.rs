//! Shardd: an embeddable shard server.
//!
//! A [`Shardd`] owns registered [`Table`] shards and answers pass requests
//! over TCP from a fixed worker pool. Every pass is answered through
//! [`LocalShard`] — the reference implementation of the shard-pass surface —
//! so a remote answer is bit-identical to what the same shard would produce
//! in process.
//!
//! Registration replaces any shard already stored under the same key, which
//! is what lets a coordinator re-register shards after a server restart.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use cvopt_table::{LocalShard, ShardReader, Table};

use crate::frame::{read_frame_after, write_frame};
use crate::wire::{Request, Response};

/// How often an idle connection or the accept loop re-checks the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Once a frame has started arriving, the rest must show up within this
/// window; a stall mid-frame drops the connection (resuming the read later
/// would desync the stream, since `read_exact` consumes on timeout).
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

type ShardMap = Arc<Mutex<HashMap<String, Arc<LocalShard>>>>;
type ConnMap = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A running shard server.
///
/// Dropping (or calling [`Shardd::shutdown`]) stops the accept loop, unblocks
/// every open connection, and joins all threads.
#[derive(Debug)]
pub struct Shardd {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: ConnMap,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Shardd {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// accepting connections, answering requests on `workers` threads.
    ///
    /// Connections are multiplexed over the pool: a worker serves one
    /// request (or one idle poll) and then requeues the connection, so any
    /// number of keep-alive connections share `workers` threads fairly.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> io::Result<Shardd> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shards: ShardMap = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnMap = Arc::new(Mutex::new(HashMap::new()));
        let (tx, rx) = mpsc::channel::<(u64, TcpStream)>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(workers.max(1) + 1);
        for worker in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let tx = tx.clone();
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            threads.push(
                thread::Builder::new()
                    .name(format!("shardd-worker-{worker}"))
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let (id, mut stream) =
                                match rx.lock().unwrap().recv_timeout(POLL_INTERVAL) {
                                    Ok(item) => item,
                                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                                };
                            if serve_one(&mut stream, &shards, &stop) {
                                // Back of the queue: other connections get a
                                // turn before this one's next request.
                                let _ = tx.send((id, stream));
                            } else {
                                conns.lock().unwrap().remove(&id);
                            }
                        }
                    })
                    .expect("spawn shardd worker"),
            );
        }

        {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            threads.push(
                thread::Builder::new()
                    .name("shardd-accept".into())
                    .spawn(move || {
                        let mut next_id = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
                                        || stream.set_write_timeout(Some(FRAME_TIMEOUT)).is_err()
                                    {
                                        continue;
                                    }
                                    let id = next_id;
                                    next_id += 1;
                                    if let Ok(clone) = stream.try_clone() {
                                        conns.lock().unwrap().insert(id, clone);
                                    }
                                    if tx.send((id, stream)).is_err() {
                                        return;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    thread::sleep(POLL_INTERVAL);
                                }
                                Err(_) => thread::sleep(POLL_INTERVAL),
                            }
                        }
                    })
                    .expect("spawn shardd accept loop"),
            );
        }

        Ok(Shardd { addr: local_addr, stop, conns, threads })
    }

    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock open connections, and join all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for (_, conn) in self.conns.lock().unwrap().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Shardd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What one poll of a connection produced.
enum NextFrame {
    /// No frame started arriving within the poll window; nothing consumed.
    Idle,
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// EOF, transport error, or a mid-frame stall: the connection is done.
    Closed,
}

/// Poll `stream` for the next frame. The stream's 50ms read timeout may only
/// fire while waiting for the *first* byte — which consumes nothing, so the
/// poll can safely repeat. Once a byte arrives the rest of the frame is read
/// under [`FRAME_TIMEOUT`], and a timeout there closes the connection rather
/// than desyncing it (std `read_exact` leaves partial reads consumed).
fn poll_frame(stream: &mut TcpStream) -> NextFrame {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return NextFrame::Closed,
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return NextFrame::Idle;
            }
            Err(_) => return NextFrame::Closed,
        }
    }
    if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
        return NextFrame::Closed;
    }
    let result = read_frame_after(stream, first[0]);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return NextFrame::Closed;
    }
    match result {
        Ok(payload) => NextFrame::Frame(payload),
        Err(_) => NextFrame::Closed,
    }
}

/// Serve at most one request on `stream`. Returns whether the connection is
/// still live and should be requeued for its next turn on the pool.
fn serve_one(stream: &mut TcpStream, shards: &ShardMap, stop: &AtomicBool) -> bool {
    if stop.load(Ordering::Relaxed) {
        return false;
    }
    match poll_frame(stream) {
        NextFrame::Idle => true,
        NextFrame::Closed => false,
        NextFrame::Frame(payload) => {
            let response = match Request::decode(&payload) {
                Ok(request) => handle_request(shards, request),
                Err(e) => Response::Error { message: e.to_string() },
            };
            write_frame(stream, &response.encode()).is_ok()
        }
    }
}

/// Execute one request against the shard map.
fn handle_request(shards: &ShardMap, request: Request) -> Response {
    match request {
        Request::Register { key, table } => {
            let rows = table.num_rows() as u64;
            let shard = Arc::new(LocalShard::new(table));
            shards.lock().unwrap().insert(key, shard);
            Response::Registered { rows }
        }
        Request::Health => {
            let mut keys: Vec<String> = shards.lock().unwrap().keys().cloned().collect();
            keys.sort();
            Response::Health { keys }
        }
        Request::Histogram { key, exprs } => with_shard(shards, &key, |shard| {
            let index = shard.group_index(&exprs)?;
            Ok(Response::Histogram { sizes: index.sizes().to_vec() })
        }),
        Request::ScatterWindow { key, exprs } => with_shard(shards, &key, |shard| {
            Ok(Response::Window { index: shard.group_index(&exprs)? })
        }),
        Request::Bitmap { key, predicate } => with_shard(shards, &key, |shard| {
            Ok(Response::Bitmap { bitmap: shard.predicate_bitmap(&predicate)? })
        }),
        Request::StatPartials { key, exprs } => with_shard(shards, &key, |shard| {
            Ok(Response::Partials { columns: shard.expr_values(&exprs)? })
        }),
        Request::Draw { key, rows } | Request::Gather { key, rows } => {
            with_shard(shards, &key, |shard| Ok(Response::Rows { table: shard.take_rows(&rows)? }))
        }
        // The shard map's mutex is held across the whole check-and-swap:
        // the row-count precondition and the replacement must be atomic, or
        // two racing appenders could both pass the check and one batch
        // would be lost.
        Request::Append { key, expected_rows, table: batch } => {
            let mut shards = shards.lock().unwrap();
            let Some(shard) = shards.get(&key).cloned() else {
                return Response::Error {
                    message: format!("no shard registered under key {key:?}"),
                };
            };
            let current = shard.table().num_rows() as u64;
            let batch_rows = batch.num_rows() as u64;
            if current == expected_rows + batch_rows {
                // A retry of an append whose response was lost: the batch
                // is already in, acknowledge without re-applying.
                return Response::Appended { rows: current };
            }
            if current != expected_rows {
                return Response::Error {
                    message: format!(
                        "append to shard {key:?} expected {expected_rows} rows, server has {current}"
                    ),
                };
            }
            match shard.table().extended(&batch) {
                Ok(extended) => {
                    let rows = extended.num_rows() as u64;
                    shards.insert(key, Arc::new(LocalShard::new(extended)));
                    Response::Appended { rows }
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Rotate { key, column, cutoff } => {
            let mut shards = shards.lock().unwrap();
            let Some(shard) = shards.get(&key).cloned() else {
                return Response::Error {
                    message: format!("no shard registered under key {key:?}"),
                };
            };
            match rotate_table(shard.table(), &column, cutoff) {
                Ok(kept) => {
                    let before = shard.table().num_rows() as u64;
                    let rows = kept.num_rows() as u64;
                    shards.insert(key, Arc::new(LocalShard::new(kept)));
                    Response::Rotated { retired: before - rows, rows }
                }
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
    }
}

/// Retention for one shard: keep rows whose window-column value is at or
/// past `cutoff`.
fn rotate_table(table: &Table, column: &str, cutoff: i64) -> cvopt_table::Result<Table> {
    let idx = table.schema().index_of(column)?;
    let kept: Vec<usize> = match table.column(idx) {
        cvopt_table::Column::Int64(v) | cvopt_table::Column::Timestamp(v) => {
            (0..v.len()).filter(|&i| v[i] >= cutoff).collect()
        }
        other => {
            return Err(cvopt_table::TableError::TypeMismatch {
                expected: cvopt_table::DataType::Int64,
                found: format!("{:?} window column", other.data_type()),
            })
        }
    };
    Ok(table.take(&kept))
}

/// Look up a shard and run `f`, folding lookup and pass errors into
/// [`Response::Error`].
fn with_shard(
    shards: &ShardMap,
    key: &str,
    f: impl FnOnce(&LocalShard) -> cvopt_table::Result<Response>,
) -> Response {
    let shard = shards.lock().unwrap().get(key).cloned();
    match shard {
        Some(shard) => match f(&shard) {
            Ok(response) => response,
            Err(e) => Response::Error { message: e.to_string() },
        },
        None => Response::Error { message: format!("no shard registered under key {key:?}") },
    }
}

/// Convenience for tests and smoke scripts: register `table` on a running
/// server via a temporary connection.
pub fn register_table(addr: &str, key: &str, table: &Table) -> Result<u64, crate::NetError> {
    let peer = crate::Peer::connect(addr)?;
    match peer.call(&Request::Register { key: key.to_string(), table: table.clone() })? {
        Response::Registered { rows } => Ok(rows),
        other => Err(crate::NetError::Remote(format!("unexpected response {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Peer;
    use crate::frame::read_frame;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn tiny_table() -> Table {
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Float64)]);
        for (k, v) in [("a", 1.0), ("b", 2.0), ("a", 3.0)] {
            b.push_row(&[Value::str(k), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn register_health_and_unknown_key() {
        let mut server = Shardd::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.addr().to_string();
        let rows = register_table(&addr, "t/0", &tiny_table()).unwrap();
        assert_eq!(rows, 3);

        let peer = Peer::connect(&addr).unwrap();
        match peer.call(&Request::Health).unwrap() {
            Response::Health { keys } => assert_eq!(keys, vec!["t/0".to_string()]),
            other => panic!("unexpected response {other:?}"),
        }

        // Unknown keys are application errors: the connection stays usable
        // and the circuit stays closed.
        let err = peer.call(&Request::Gather { key: "nope".into(), rows: vec![0] }).unwrap_err();
        assert!(matches!(err, crate::NetError::Remote(_)), "got {err}");
        assert!(!peer.circuit_open());
        assert!(peer.call(&Request::Health).is_ok());

        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn frame_arriving_slower_than_the_poll_interval_still_decodes() {
        use std::io::Write as _;

        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();

        // Dribble a Health frame with stalls longer than POLL_INTERVAL both
        // inside the length prefix and inside the body; the server must wait
        // the frame out, not restart the read mid-stream.
        let mut frame = Vec::new();
        write_frame(&mut frame, &Request::Health.encode()).unwrap();
        for chunk in frame.chunks(2) {
            raw.write_all(chunk).unwrap();
            raw.flush().unwrap();
            thread::sleep(POLL_INTERVAL * 2);
        }

        match Response::decode(&read_frame(&mut raw).unwrap()).unwrap() {
            Response::Health { keys } => assert!(keys.is_empty()),
            other => panic!("unexpected response {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn more_connections_than_workers_are_all_served() {
        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.addr().to_string();
        register_table(&addr, "t", &tiny_table()).unwrap();

        // A single worker must round-robin all four keep-alive connections.
        let peers: Vec<Peer> = (0..4).map(|_| Peer::connect(&addr).unwrap()).collect();
        for _round in 0..3 {
            for peer in &peers {
                match peer.call(&Request::Health).unwrap() {
                    Response::Health { keys } => assert_eq!(keys, vec!["t".to_string()]),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        server.shutdown();
    }

    #[test]
    fn closed_connections_are_pruned_from_the_conn_map() {
        let mut server = Shardd::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.addr().to_string();
        for _ in 0..3 {
            let peer = Peer::connect(&addr).unwrap();
            peer.call(&Request::Health).unwrap();
        }
        // All three peers have hung up; the workers notice EOF on their next
        // turn and drop the map entries (and with them the cloned sockets).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !server.conns.lock().unwrap().is_empty() {
            assert!(std::time::Instant::now() < deadline, "connection map never drained");
            thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }

    #[test]
    fn gather_round_trips_rows() {
        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.addr().to_string();
        register_table(&addr, "t", &tiny_table()).unwrap();
        let peer = Peer::connect(&addr).unwrap();
        match peer.call(&Request::Gather { key: "t".into(), rows: vec![2, 0] }).unwrap() {
            Response::Rows { table } => {
                assert_eq!(table.num_rows(), 2);
                assert_eq!(format!("{:?}", table.row(0)), format!("{:?}", tiny_table().row(2)));
            }
            other => panic!("unexpected response {other:?}"),
        }
        server.shutdown();
    }
}

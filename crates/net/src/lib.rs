//! Distributed shards for CVOPT.
//!
//! This crate lets the sampling engine scatter passes over TCP instead of
//! threads. It has three layers:
//!
//! * [`frame`] + [`wire`] — a length-prefixed, versioned binary protocol.
//!   Every message is `[u32 LE length][u8 version][payload]`; payloads are
//!   tagged unions encoded with fixed-width little-endian primitives, so the
//!   same bytes decode identically on every platform.
//! * [`server`] — [`server::Shardd`], an embeddable shard server owning one
//!   or more registered [`cvopt_table::Table`] shards and answering pass
//!   requests (histogram, scatter window, bitmap, stat partials, gather)
//!   from a fixed worker pool. The `cvopt-shardd` binary wraps it.
//! * [`client`] + [`remote`] — [`client::Peer`], a persistent connection
//!   with timeouts, one transport retry, and a circuit breaker; and
//!   [`remote::RemoteShard`], which implements the same
//!   [`cvopt_table::ShardReader`] pass surface local shards use, so the
//!   engine coordinates mixed local and remote shards with one code path.
//!
//! # Determinism contract
//!
//! A query over remote shards returns bytes identical to the same query over
//! a local [`cvopt_table::ShardedTable`] with the same layout. The server
//! answers every pass through [`cvopt_table::LocalShard`] — the reference
//! implementation — and the wire format round-trips values exactly
//! (`f64::to_bits`, dictionary rebuild in row order), so nothing drifts in
//! transit.

pub mod circuit;
pub mod client;
pub mod frame;
pub mod remote;
pub mod server;
pub mod wire;

use std::sync::atomic::{AtomicU64, Ordering};

static NET_REQUESTS: AtomicU64 = AtomicU64::new(0);
static NET_RETRIES: AtomicU64 = AtomicU64::new(0);
static NET_CIRCUIT_OPENS: AtomicU64 = AtomicU64::new(0);
static NET_BYTES_SENT: AtomicU64 = AtomicU64::new(0);
static NET_BYTES_RECEIVED: AtomicU64 = AtomicU64::new(0);

/// Total client requests attempted (including retried and rejected ones).
pub fn net_requests() -> u64 {
    NET_REQUESTS.load(Ordering::Relaxed)
}

/// Total transport-level retries after an I/O failure.
pub fn net_retries() -> u64 {
    NET_RETRIES.load(Ordering::Relaxed)
}

/// Total circuit-breaker transitions into the open state.
pub fn net_circuit_opens() -> u64 {
    NET_CIRCUIT_OPENS.load(Ordering::Relaxed)
}

/// Total frame bytes written by clients.
pub fn net_bytes_sent() -> u64 {
    NET_BYTES_SENT.load(Ordering::Relaxed)
}

/// Total frame bytes read back by clients.
pub fn net_bytes_received() -> u64 {
    NET_BYTES_RECEIVED.load(Ordering::Relaxed)
}

pub(crate) fn record_request() {
    NET_REQUESTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_retry() {
    NET_RETRIES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_circuit_open() {
    NET_CIRCUIT_OPENS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_bytes_sent(n: u64) {
    NET_BYTES_SENT.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_bytes_received(n: u64) {
    NET_BYTES_RECEIVED.fetch_add(n, Ordering::Relaxed);
}

pub use client::{NetConfig, NetError, Peer};
pub use remote::RemoteShard;
pub use server::Shardd;
pub use wire::{Request, Response};

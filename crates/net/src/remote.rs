//! RemoteShard: the shard-pass surface over a network peer.

use std::sync::Arc;

use cvopt_table::{
    Bitmap, ColumnValues, GroupIndex, Predicate, Result, ScalarExpr, Schema, ShardReader, Table,
    TableError,
};

use crate::client::{NetError, Peer};
use crate::wire::{Request, Response};

/// One table shard living on a remote [`crate::Shardd`], addressed by key.
///
/// Implements [`ShardReader`], so a
/// [`cvopt_table::ShardSet`] can mix remote and local shards freely — the
/// coordinator neither knows nor cares where a shard's rows live. Several
/// `RemoteShard`s may share one [`Peer`] (one connection per server, many
/// shards per server).
#[derive(Debug)]
pub struct RemoteShard {
    peer: Arc<Peer>,
    key: String,
    schema: Schema,
    rows: usize,
}

impl RemoteShard {
    /// Ship `table` to the peer under `key` and return a handle to it.
    ///
    /// The server echoes the registered row count; a mismatch means the
    /// table was mangled in transit and is reported as an error.
    pub fn register(peer: Arc<Peer>, key: impl Into<String>, table: &Table) -> Result<RemoteShard> {
        let key = key.into();
        let request = Request::Register { key: key.clone(), table: table.clone() };
        let shard =
            RemoteShard { peer, key, schema: table.schema().clone(), rows: table.num_rows() };
        match shard.call(&request)? {
            Response::Registered { rows } if rows as usize == table.num_rows() => Ok(shard),
            Response::Registered { rows } => Err(TableError::invalid(format!(
                "remote shard {}: registered {rows} rows, sent {}",
                shard.location(),
                table.num_rows()
            ))),
            other => Err(shard.unexpected(&other)),
        }
    }

    /// Attach to a shard the server already holds (after a coordinator
    /// restart, say), trusting `schema` and `rows` from the catalog.
    pub fn attach(peer: Arc<Peer>, key: impl Into<String>, schema: Schema, rows: usize) -> Self {
        RemoteShard { peer, key: key.into(), schema, rows }
    }

    /// The peer this shard lives on.
    pub fn peer(&self) -> &Arc<Peer> {
        &self.peer
    }

    /// Append a row batch to the remote shard — the streaming ingest pass.
    ///
    /// The request carries this handle's view of the shard's row count, and
    /// the server applies the batch only at that count (acknowledging, not
    /// re-applying, when the batch is already in) — so the transport
    /// layer's retry-on-reconnect can never double-append. Returns the
    /// shard's post-append row count.
    pub fn append(&mut self, batch: &Table) -> Result<usize> {
        let request = Request::Append {
            key: self.key.clone(),
            expected_rows: self.rows as u64,
            table: batch.clone(),
        };
        match self.call(&request)? {
            Response::Appended { rows } => {
                let expected = self.rows + batch.num_rows();
                if rows as usize != expected {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: append acknowledged {rows} rows, expected {expected}",
                        self.location()
                    )));
                }
                self.rows = expected;
                Ok(expected)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    /// Retention rotation: drop remote rows whose `column` value is below
    /// `cutoff`. Returns how many rows were retired.
    pub fn rotate(&mut self, column: &str, cutoff: i64) -> Result<usize> {
        let request = Request::Rotate { key: self.key.clone(), column: column.to_string(), cutoff };
        match self.call(&request)? {
            Response::Rotated { retired, rows } => {
                self.rows = rows as usize;
                Ok(retired as usize)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    fn call(&self, request: &Request) -> Result<Response> {
        self.peer.call(request).map_err(|e| self.net_err(e))
    }

    fn net_err(&self, e: NetError) -> TableError {
        TableError::invalid(format!("remote shard {}: {e}", self.location()))
    }

    fn unexpected(&self, response: &Response) -> TableError {
        let kind = match response {
            Response::Registered { .. } => "Registered",
            Response::Health { .. } => "Health",
            Response::Histogram { .. } => "Histogram",
            Response::Window { .. } => "Window",
            Response::Bitmap { .. } => "Bitmap",
            Response::Partials { .. } => "Partials",
            Response::Rows { .. } => "Rows",
            Response::Error { .. } => "Error",
            Response::Appended { .. } => "Appended",
            Response::Rotated { .. } => "Rotated",
        };
        TableError::invalid(format!("remote shard {}: unexpected {kind} response", self.location()))
    }
}

impl ShardReader for RemoteShard {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_rows(&self) -> usize {
        self.rows
    }

    fn location(&self) -> String {
        format!("{}/{}", self.peer.addr(), self.key)
    }

    fn group_index(&self, exprs: &[ScalarExpr]) -> Result<GroupIndex> {
        let request = Request::ScatterWindow { key: self.key.clone(), exprs: exprs.to_vec() };
        match self.call(&request)? {
            Response::Window { index } => {
                if index.num_rows() != self.rows {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: scatter window covers {} rows, shard has {}",
                        self.location(),
                        index.num_rows(),
                        self.rows
                    )));
                }
                Ok(index)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    fn predicate_bitmap(&self, predicate: &Predicate) -> Result<Bitmap> {
        let request = Request::Bitmap { key: self.key.clone(), predicate: predicate.clone() };
        match self.call(&request)? {
            Response::Bitmap { bitmap } => {
                if bitmap.len() != self.rows {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: bitmap covers {} rows, shard has {}",
                        self.location(),
                        bitmap.len(),
                        self.rows
                    )));
                }
                Ok(bitmap)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    fn expr_values(&self, exprs: &[Option<ScalarExpr>]) -> Result<Vec<Option<ColumnValues>>> {
        let request = Request::StatPartials { key: self.key.clone(), exprs: exprs.to_vec() };
        match self.call(&request)? {
            Response::Partials { columns } => {
                if columns.len() != exprs.len() {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: {} partial columns for {} expressions",
                        self.location(),
                        columns.len(),
                        exprs.len()
                    )));
                }
                Ok(columns)
            }
            other => Err(self.unexpected(&other)),
        }
    }

    fn take_rows(&self, rows: &[u32]) -> Result<Table> {
        let request = Request::Gather { key: self.key.clone(), rows: rows.to_vec() };
        match self.call(&request)? {
            Response::Rows { table } => {
                if table.num_rows() != rows.len() {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: gathered {} rows, requested {}",
                        self.location(),
                        table.num_rows(),
                        rows.len()
                    )));
                }
                if table.schema() != &self.schema {
                    return Err(TableError::invalid(format!(
                        "remote shard {}: gathered rows have a different schema",
                        self.location()
                    )));
                }
                Ok(table)
            }
            other => Err(self.unexpected(&other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Shardd;
    use cvopt_table::{DataType, LocalShard, TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Float64)]);
        for (k, v) in [("a", 1.0), ("b", 2.0), ("a", 3.0), ("c", 4.0)] {
            b.push_row(&[Value::str(k), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn remote_passes_match_local_shard() {
        let mut server = Shardd::bind("127.0.0.1:0", 2).unwrap();
        let peer = Arc::new(Peer::connect(server.addr().to_string()).unwrap());
        let remote = RemoteShard::register(Arc::clone(&peer), "t/0", &table()).unwrap();
        let local = LocalShard::new(table());

        assert_eq!(remote.num_rows(), local.num_rows());
        assert_eq!(remote.schema(), local.schema());

        let exprs = [ScalarExpr::col("k")];
        let remote_index = remote.group_index(&exprs).unwrap();
        let local_index = local.group_index(&exprs).unwrap();
        assert_eq!(remote_index.row_groups(), local_index.row_groups());
        assert_eq!(remote_index.sizes(), local_index.sizes());

        let pred = Predicate::cmp("v", cvopt_table::CmpOp::Gt, Value::Float64(1.5));
        let remote_bm = remote.predicate_bitmap(&pred).unwrap();
        let local_bm = local.predicate_bitmap(&pred).unwrap();
        assert_eq!(remote_bm, local_bm);

        let exprs = [None, Some(ScalarExpr::col("v"))];
        let remote_vals = remote.expr_values(&exprs).unwrap();
        let local_vals = local.expr_values(&exprs).unwrap();
        assert_eq!(remote_vals, local_vals);

        let rows = [3u32, 0, 2];
        let remote_rows = remote.take_rows(&rows).unwrap();
        let local_rows = local.take_rows(&rows).unwrap();
        for r in 0..rows.len() {
            assert_eq!(format!("{:?}", remote_rows.row(r)), format!("{:?}", local_rows.row(r)));
        }

        server.shutdown();
    }

    fn ts_table(offset: i64, rows: i64) -> Table {
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("ts", DataType::Int64)]);
        for i in offset..offset + rows {
            b.push_row(&[Value::str(["a", "b"][(i % 2) as usize]), Value::Int64(i)]).unwrap();
        }
        b.finish()
    }

    /// Append then rotate over the wire; the surviving rows match what the
    /// same operations produce on a local table.
    #[test]
    fn append_and_rotate_over_the_wire() {
        let mut server = Shardd::bind("127.0.0.1:0", 2).unwrap();
        let peer = Arc::new(Peer::connect(server.addr().to_string()).unwrap());
        let mut remote = RemoteShard::register(Arc::clone(&peer), "t/0", &ts_table(0, 4)).unwrap();

        assert_eq!(remote.append(&ts_table(4, 3)).unwrap(), 7);
        assert_eq!(remote.num_rows(), 7);

        let retired = remote.rotate("ts", 2).unwrap();
        assert_eq!((retired, remote.num_rows()), (2, 5));

        // The remote rows after append+rotate equal the local equivalent.
        let local = ts_table(2, 5);
        let gathered = remote.take_rows(&(0..5).map(|r| r as u32).collect::<Vec<_>>()).unwrap();
        for r in 0..5 {
            assert_eq!(format!("{:?}", gathered.row(r)), format!("{:?}", local.row(r)));
        }

        // Rotating on a non-integer column is a clean application error.
        assert!(remote.rotate("k", 0).is_err());
        server.shutdown();
    }

    /// A retried append (same expected row count) acknowledges instead of
    /// double-applying; a stale appender gets an error.
    #[test]
    fn append_is_idempotent_under_retry() {
        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let addr = server.addr().to_string();
        crate::server::register_table(&addr, "t", &ts_table(0, 4)).unwrap();
        let peer = Peer::connect(&addr).unwrap();

        let batch = ts_table(4, 2);
        let first = Request::Append { key: "t".into(), expected_rows: 4, table: batch.clone() };
        match peer.call(&first).unwrap() {
            Response::Appended { rows } => assert_eq!(rows, 6),
            other => panic!("unexpected response {other:?}"),
        }
        // Retry with the same precondition: acknowledged, not re-applied.
        match peer.call(&first).unwrap() {
            Response::Appended { rows } => assert_eq!(rows, 6),
            other => panic!("unexpected response {other:?}"),
        }
        // A genuinely stale view is an error, not a silent overwrite.
        let stale = Request::Append { key: "t".into(), expected_rows: 3, table: batch };
        assert!(peer.call(&stale).is_err());
        server.shutdown();
    }

    #[test]
    fn out_of_range_gather_is_a_clean_error() {
        let mut server = Shardd::bind("127.0.0.1:0", 1).unwrap();
        let peer = Arc::new(Peer::connect(server.addr().to_string()).unwrap());
        let remote = RemoteShard::register(peer, "t", &table()).unwrap();
        assert!(remote.take_rows(&[99]).is_err());
        server.shutdown();
    }
}

//! Length-prefixed framing: `[u32 LE length][u8 version][payload]`.
//!
//! The length covers the version byte plus the payload, so a reader can
//! allocate exactly once per frame. Frames above [`MAX_FRAME`] are rejected
//! before allocation — a corrupt or hostile length prefix cannot OOM the
//! process.

use std::io::{self, Read, Write};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame body (version byte + payload): 256 MiB.
pub const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Write one frame. Returns the total bytes written (prefix included).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    let body_len = payload.len() + 1;
    if body_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {body_len} bytes exceeds the {MAX_FRAME} byte limit"),
        ));
    }
    w.write_all(&(body_len as u32).to_le_bytes())?;
    w.write_all(&[PROTOCOL_VERSION])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(4 + body_len as u64)
}

/// Read one frame, returning its payload (version byte stripped).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    read_frame_after(r, first[0])
}

/// Read the rest of a frame whose first length-prefix byte is already in
/// hand. Lets a server poll for `first` under a short timeout (a timeout
/// there consumes nothing, so retrying cannot desync the stream) and then
/// commit to the full frame read.
pub fn read_frame_after(r: &mut impl Read, first: u8) -> io::Result<Vec<u8>> {
    let mut prefix = [first, 0, 0, 0];
    r.read_exact(&mut prefix[1..])?;
    let body_len = u32::from_le_bytes(prefix) as usize;
    if body_len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    if body_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {body_len} bytes exceeds the {MAX_FRAME} byte limit"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    if body[0] != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol version {}", body[0]),
        ));
    }
    body.remove(0);
    Ok(body)
}

/// Total on-wire size of a frame carrying `payload`.
pub fn frame_len(payload: &[u8]) -> u64 {
    4 + 1 + payload.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(written, buf.len() as u64);
        let got = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn empty_payload_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let got = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf[4] = 9;
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(PROTOCOL_VERSION);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncated_body() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut Cursor::new(&buf)).is_err());
    }
}

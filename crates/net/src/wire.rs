//! Binary payload encoding for the shard protocol.
//!
//! Every payload is a tagged union over fixed-width little-endian
//! primitives. Strings are a length followed by UTF-8 bytes; floats travel
//! as `f64::to_bits`, so NaN payloads and signed zeros round-trip exactly.
//! Tables are shipped row-major as tagged [`Value`]s and rebuilt with
//! [`TableBuilder`] in row order, which reproduces the dictionary build
//! order of the original table — a gathered remote table is byte-identical
//! to its local counterpart.
//!
//! Tag assignments are part of the protocol and must never be renumbered;
//! new variants get new tags.

use std::fmt;
use std::sync::Arc;

use cvopt_table::{
    ArithOp, Bitmap, CaseWhen, CmpOp, ColumnValues, DataType, GroupIndex, KeyAtom, Predicate,
    ScalarExpr, Schema, Table, TableBuilder, Value,
};

/// Decoding failed: the payload is truncated, mis-tagged, or inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl DecodeError {
    fn new(msg: impl Into<String>) -> Self {
        DecodeError(msg.into())
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

/// Nested expressions and predicates deeper than this are rejected while
/// decoding, so a corrupt frame cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// Cap on any single up-front reservation sized by a claimed element count.
/// Counts are validated against remaining payload bytes assuming one byte
/// per element, but most elements are wider than a byte — so a hostile
/// count inside a large frame could otherwise force a reservation many
/// times the payload size before element decoding fails. Beyond the cap,
/// vectors grow as elements actually decode.
const MAX_PREALLOC: usize = 64 * 1024;

/// Decode `n` elements with `f`, pre-allocating at most [`MAX_PREALLOC`].
fn get_vec<'a, T>(
    r: &mut Reader<'a>,
    n: usize,
    mut f: impl FnMut(&mut Reader<'a>) -> Result<T>,
) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(n.min(MAX_PREALLOC));
    for _ in 0..n {
        out.push(f(r)?);
    }
    Ok(out)
}

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty payload.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finish and return the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Error unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::new(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::new(format!(
                "payload truncated: wanted {n} bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::new(format!("invalid bool byte {t}"))),
        }
    }

    fn len(&mut self) -> Result<usize> {
        let n = self.u64()?;
        // A length can never exceed what is physically left in the payload
        // (every element is at least one byte), so reject it before any
        // allocation sized by it.
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(DecodeError::new(format!(
                "length {n} exceeds remaining payload of {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.len()?;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DecodeError::new("string field is not valid UTF-8"))
    }
}

// ---------------------------------------------------------------------------
// Leaf encoders
// ---------------------------------------------------------------------------

fn put_data_type(w: &mut Writer, dt: DataType) {
    w.u8(match dt {
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
        DataType::Bool => 4,
        DataType::Timestamp => 5,
    });
}

fn get_data_type(r: &mut Reader) -> Result<DataType> {
    match r.u8()? {
        1 => Ok(DataType::Int64),
        2 => Ok(DataType::Float64),
        3 => Ok(DataType::Str),
        4 => Ok(DataType::Bool),
        5 => Ok(DataType::Timestamp),
        t => Err(DecodeError::new(format!("invalid data type tag {t}"))),
    }
}

fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.u8(0),
        Value::Int64(x) => {
            w.u8(1);
            w.i64(*x);
        }
        Value::Float64(x) => {
            w.u8(2);
            w.f64(*x);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Bool(b) => {
            w.u8(4);
            w.bool(*b);
        }
        Value::Timestamp(x) => {
            w.u8(5);
            w.i64(*x);
        }
    }
}

fn get_value(r: &mut Reader) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int64(r.i64()?)),
        2 => Ok(Value::Float64(r.f64()?)),
        3 => Ok(Value::Str(Arc::from(r.str()?.as_str()))),
        4 => Ok(Value::Bool(r.bool()?)),
        5 => Ok(Value::Timestamp(r.i64()?)),
        t => Err(DecodeError::new(format!("invalid value tag {t}"))),
    }
}

fn put_schema(w: &mut Writer, schema: &Schema) {
    w.len(schema.len());
    for field in schema.fields() {
        w.str(&field.name);
        put_data_type(w, field.dtype);
    }
}

fn get_schema(r: &mut Reader) -> Result<Schema> {
    let n = r.len()?;
    let fields = get_vec(r, n, |r| {
        let name = r.str()?;
        let dtype = get_data_type(r)?;
        Ok(cvopt_table::Field::new(name, dtype))
    })?;
    Ok(Schema::from_fields(fields))
}

fn put_table(w: &mut Writer, table: &Table) {
    put_schema(w, table.schema());
    w.len(table.num_rows());
    for row in 0..table.num_rows() {
        for value in table.row(row) {
            put_value(w, &value);
        }
    }
}

fn get_table(r: &mut Reader) -> Result<Table> {
    let schema = get_schema(r)?;
    let num_rows = r.len()?;
    let num_cols = schema.len();
    let mut builder = TableBuilder::from_schema(schema);
    builder.reserve(num_rows.min(MAX_PREALLOC));
    let mut row = Vec::with_capacity(num_cols);
    for _ in 0..num_rows {
        row.clear();
        for _ in 0..num_cols {
            row.push(get_value(r)?);
        }
        builder.push_row(&row).map_err(|e| DecodeError::new(format!("table row rejected: {e}")))?;
    }
    Ok(builder.finish())
}

fn put_cmp_op(w: &mut Writer, op: CmpOp) {
    w.u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn get_cmp_op(r: &mut Reader) -> Result<CmpOp> {
    match r.u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        t => Err(DecodeError::new(format!("invalid comparison tag {t}"))),
    }
}

fn put_expr(w: &mut Writer, expr: &ScalarExpr) {
    match expr {
        ScalarExpr::Column(name) => {
            w.u8(0);
            w.str(name);
        }
        ScalarExpr::Year(inner) => {
            w.u8(1);
            put_expr(w, inner);
        }
        ScalarExpr::Month(inner) => {
            w.u8(2);
            put_expr(w, inner);
        }
        ScalarExpr::Day(inner) => {
            w.u8(3);
            put_expr(w, inner);
        }
        ScalarExpr::Hour(inner) => {
            w.u8(4);
            put_expr(w, inner);
        }
        ScalarExpr::Indicator { input, op, threshold_bits } => {
            w.u8(5);
            put_expr(w, input);
            put_cmp_op(w, *op);
            w.u64(*threshold_bits);
        }
        ScalarExpr::Literal(bits) => {
            w.u8(6);
            w.u64(*bits);
        }
        ScalarExpr::Binary { op, left, right } => {
            w.u8(7);
            put_arith_op(w, *op);
            put_expr(w, left);
            put_expr(w, right);
        }
        ScalarExpr::Case { whens, otherwise } => {
            w.u8(8);
            w.len(whens.len());
            for when in whens {
                put_expr(w, &when.lhs);
                put_cmp_op(w, when.op);
                put_expr(w, &when.rhs);
                put_expr(w, &when.then);
            }
            match otherwise {
                Some(e) => {
                    w.u8(1);
                    put_expr(w, e);
                }
                None => w.u8(0),
            }
        }
    }
}

fn put_arith_op(w: &mut Writer, op: ArithOp) {
    w.u8(match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    });
}

fn get_arith_op(r: &mut Reader) -> Result<ArithOp> {
    match r.u8()? {
        0 => Ok(ArithOp::Add),
        1 => Ok(ArithOp::Sub),
        2 => Ok(ArithOp::Mul),
        3 => Ok(ArithOp::Div),
        t => Err(DecodeError::new(format!("invalid arithmetic operator tag {t}"))),
    }
}

fn get_expr(r: &mut Reader, depth: usize) -> Result<ScalarExpr> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::new("expression nests too deeply"));
    }
    match r.u8()? {
        0 => Ok(ScalarExpr::Column(r.str()?)),
        1 => Ok(ScalarExpr::Year(Box::new(get_expr(r, depth + 1)?))),
        2 => Ok(ScalarExpr::Month(Box::new(get_expr(r, depth + 1)?))),
        3 => Ok(ScalarExpr::Day(Box::new(get_expr(r, depth + 1)?))),
        4 => Ok(ScalarExpr::Hour(Box::new(get_expr(r, depth + 1)?))),
        5 => {
            let input = Box::new(get_expr(r, depth + 1)?);
            let op = get_cmp_op(r)?;
            let threshold_bits = r.u64()?;
            Ok(ScalarExpr::Indicator { input, op, threshold_bits })
        }
        6 => Ok(ScalarExpr::Literal(r.u64()?)),
        7 => {
            let op = get_arith_op(r)?;
            let left = Box::new(get_expr(r, depth + 1)?);
            let right = Box::new(get_expr(r, depth + 1)?);
            Ok(ScalarExpr::Binary { op, left, right })
        }
        8 => {
            let n = r.len()?;
            let whens = get_vec(r, n, |r| {
                Ok(CaseWhen {
                    lhs: get_expr(r, depth + 1)?,
                    op: get_cmp_op(r)?,
                    rhs: get_expr(r, depth + 1)?,
                    then: get_expr(r, depth + 1)?,
                })
            })?;
            let otherwise = match r.u8()? {
                0 => None,
                1 => Some(Box::new(get_expr(r, depth + 1)?)),
                t => return Err(DecodeError::new(format!("invalid CASE else tag {t}"))),
            };
            Ok(ScalarExpr::Case { whens, otherwise })
        }
        t => Err(DecodeError::new(format!("invalid expression tag {t}"))),
    }
}

fn put_exprs(w: &mut Writer, exprs: &[ScalarExpr]) {
    w.len(exprs.len());
    for expr in exprs {
        put_expr(w, expr);
    }
}

fn get_exprs(r: &mut Reader) -> Result<Vec<ScalarExpr>> {
    let n = r.len()?;
    get_vec(r, n, |r| get_expr(r, 0))
}

fn put_predicate(w: &mut Writer, pred: &Predicate) {
    match pred {
        Predicate::True => w.u8(0),
        Predicate::Cmp { expr, op, value } => {
            w.u8(1);
            put_expr(w, expr);
            put_cmp_op(w, *op);
            put_value(w, value);
        }
        Predicate::Between { expr, low, high } => {
            w.u8(2);
            put_expr(w, expr);
            put_value(w, low);
            put_value(w, high);
        }
        Predicate::InList { expr, values } => {
            w.u8(3);
            put_expr(w, expr);
            w.len(values.len());
            for value in values {
                put_value(w, value);
            }
        }
        Predicate::And(a, b) => {
            w.u8(4);
            put_predicate(w, a);
            put_predicate(w, b);
        }
        Predicate::Or(a, b) => {
            w.u8(5);
            put_predicate(w, a);
            put_predicate(w, b);
        }
        Predicate::Not(inner) => {
            w.u8(6);
            put_predicate(w, inner);
        }
    }
}

fn get_predicate(r: &mut Reader, depth: usize) -> Result<Predicate> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::new("predicate nests too deeply"));
    }
    match r.u8()? {
        0 => Ok(Predicate::True),
        1 => {
            let expr = get_expr(r, 0)?;
            let op = get_cmp_op(r)?;
            let value = get_value(r)?;
            Ok(Predicate::Cmp { expr, op, value })
        }
        2 => {
            let expr = get_expr(r, 0)?;
            let low = get_value(r)?;
            let high = get_value(r)?;
            Ok(Predicate::Between { expr, low, high })
        }
        3 => {
            let expr = get_expr(r, 0)?;
            let n = r.len()?;
            let values = get_vec(r, n, get_value)?;
            Ok(Predicate::InList { expr, values })
        }
        4 => {
            let a = get_predicate(r, depth + 1)?;
            let b = get_predicate(r, depth + 1)?;
            Ok(Predicate::And(Box::new(a), Box::new(b)))
        }
        5 => {
            let a = get_predicate(r, depth + 1)?;
            let b = get_predicate(r, depth + 1)?;
            Ok(Predicate::Or(Box::new(a), Box::new(b)))
        }
        6 => Ok(Predicate::Not(Box::new(get_predicate(r, depth + 1)?))),
        t => Err(DecodeError::new(format!("invalid predicate tag {t}"))),
    }
}

fn put_bitmap(w: &mut Writer, bitmap: &Bitmap) {
    w.len(bitmap.len());
    w.len(bitmap.words().len());
    for &word in bitmap.words() {
        w.u64(word);
    }
}

fn get_bitmap(r: &mut Reader) -> Result<Bitmap> {
    // The row count is logical (64 rows per word), not an element count, so
    // it is read without the elements-fit-in-payload guard; `from_words`
    // validates it against the actual word count.
    let len = r.u64()? as usize;
    let n_words = r.len()?;
    let words = get_vec(r, n_words, |r| r.u64())?;
    Bitmap::from_words(words, len).map_err(|e| DecodeError::new(e.to_string()))
}

fn put_group_index(w: &mut Writer, index: &GroupIndex) {
    w.len(index.dim_names().len());
    for name in index.dim_names() {
        w.str(name);
    }
    w.len(index.row_groups().len());
    for &gid in index.row_groups() {
        w.u32(gid);
    }
    w.len(index.num_groups());
    for gid in 0..index.num_groups() as u32 {
        let key = index.key(gid);
        w.len(key.len());
        for atom in key {
            match atom {
                KeyAtom::Int(v) => {
                    w.u8(0);
                    w.i64(*v);
                }
                KeyAtom::Str(s) => {
                    w.u8(1);
                    w.str(s);
                }
            }
        }
        w.u64(index.size(gid));
    }
}

fn get_group_index(r: &mut Reader) -> Result<GroupIndex> {
    let n_dims = r.len()?;
    let dim_names = get_vec(r, n_dims, |r| r.str())?;
    let n_rows = r.len()?;
    let row_groups = get_vec(r, n_rows, |r| r.u32())?;
    let n_groups = r.len()?;
    let mut group_keys = Vec::with_capacity(n_groups.min(MAX_PREALLOC));
    let mut group_sizes = Vec::with_capacity(n_groups.min(MAX_PREALLOC));
    for _ in 0..n_groups {
        let n_atoms = r.len()?;
        let key = get_vec(r, n_atoms, |r| match r.u8()? {
            0 => Ok(KeyAtom::Int(r.i64()?)),
            1 => Ok(KeyAtom::Str(Arc::from(r.str()?.as_str()))),
            t => Err(DecodeError::new(format!("invalid key atom tag {t}"))),
        })?;
        group_keys.push(key);
        group_sizes.push(r.u64()?);
    }
    GroupIndex::from_parts(dim_names, row_groups, group_keys, group_sizes)
        .map_err(|e| DecodeError::new(e.to_string()))
}

fn put_column_values(w: &mut Writer, col: &ColumnValues) {
    match col {
        ColumnValues::Dense(values) => {
            w.u8(0);
            w.len(values.len());
            for &v in values {
                w.f64(v);
            }
        }
        ColumnValues::Sparse(values) => {
            w.u8(1);
            w.len(values.len());
            for v in values {
                match v {
                    Some(x) => {
                        w.u8(1);
                        w.f64(*x);
                    }
                    None => w.u8(0),
                }
            }
        }
    }
}

fn get_column_values(r: &mut Reader) -> Result<ColumnValues> {
    match r.u8()? {
        0 => {
            let n = r.len()?;
            let values = get_vec(r, n, |r| r.f64())?;
            Ok(ColumnValues::Dense(values))
        }
        1 => {
            let n = r.len()?;
            let values = get_vec(r, n, |r| Ok(if r.bool()? { Some(r.f64()?) } else { None }))?;
            Ok(ColumnValues::Sparse(values))
        }
        t => Err(DecodeError::new(format!("invalid column values tag {t}"))),
    }
}

fn put_rows(w: &mut Writer, rows: &[u32]) {
    w.len(rows.len());
    for &row in rows {
        w.u32(row);
    }
}

fn get_rows(r: &mut Reader) -> Result<Vec<u32>> {
    let n = r.len()?;
    get_vec(r, n, |r| r.u32())
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// A request from the coordinator to a shard server.
///
/// Every pass-level request names the shard `key` it targets; keys are
/// assigned at registration, so one server can host shards of many tables.
#[derive(Debug, Clone)]
pub enum Request {
    /// Install (or replace) a shard under `key`.
    Register {
        /// Shard key, e.g. `"aq/0"`.
        key: String,
        /// Full shard contents.
        table: Table,
    },
    /// Liveness probe; answers with the registered shard keys.
    Health,
    /// Group-size histogram pass: only per-group sizes come back.
    Histogram {
        /// Target shard.
        key: String,
        /// Group-by dimension expressions.
        exprs: Vec<ScalarExpr>,
    },
    /// Scatter-window pass: the shard-local [`GroupIndex`] comes back whole.
    ScatterWindow {
        /// Target shard.
        key: String,
        /// Group-by dimension expressions.
        exprs: Vec<ScalarExpr>,
    },
    /// Predicate pass: evaluate a filter into a shard-local bitmap.
    Bitmap {
        /// Target shard.
        key: String,
        /// Filter to evaluate.
        predicate: Predicate,
    },
    /// Statistics pass: per-row numeric views of aggregate input columns.
    StatPartials {
        /// Target shard.
        key: String,
        /// One optional expression per aggregate (`None` for `COUNT(*)`).
        exprs: Vec<Option<ScalarExpr>>,
    },
    /// Materialize sampled rows (shard-local indices, in request order).
    Draw {
        /// Target shard.
        key: String,
        /// Shard-local row indices.
        rows: Vec<u32>,
    },
    /// Gather rows for exact execution (same shape as `Draw`).
    Gather {
        /// Target shard.
        key: String,
        /// Shard-local row indices.
        rows: Vec<u32>,
    },
    /// Streaming ingest: append a row batch to a registered shard.
    ///
    /// `expected_rows` is the appender's view of the shard's pre-append
    /// row count. The server applies the batch only at that count and
    /// acknowledges (without re-applying) when the shard already sits at
    /// `expected_rows + batch rows` — so a retry after a lost response is
    /// idempotent, never a double append.
    Append {
        /// Target shard.
        key: String,
        /// Shard row count the appender observed.
        expected_rows: u64,
        /// The batch to append.
        table: Table,
    },
    /// Retention rotation: drop shard rows whose `column` value is below
    /// `cutoff`.
    Rotate {
        /// Target shard.
        key: String,
        /// Window column (`INT64`/`TIMESTAMP`).
        column: String,
        /// Rows with `column < cutoff` are dropped.
        cutoff: i64,
    },
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Register { key, table } => {
                w.u8(1);
                w.str(key);
                put_table(&mut w, table);
            }
            Request::Health => w.u8(2),
            Request::Histogram { key, exprs } => {
                w.u8(3);
                w.str(key);
                put_exprs(&mut w, exprs);
            }
            Request::ScatterWindow { key, exprs } => {
                w.u8(4);
                w.str(key);
                put_exprs(&mut w, exprs);
            }
            Request::Bitmap { key, predicate } => {
                w.u8(5);
                w.str(key);
                put_predicate(&mut w, predicate);
            }
            Request::StatPartials { key, exprs } => {
                w.u8(6);
                w.str(key);
                w.len(exprs.len());
                for expr in exprs {
                    match expr {
                        Some(e) => {
                            w.u8(1);
                            put_expr(&mut w, e);
                        }
                        None => w.u8(0),
                    }
                }
            }
            Request::Draw { key, rows } => {
                w.u8(7);
                w.str(key);
                put_rows(&mut w, rows);
            }
            Request::Gather { key, rows } => {
                w.u8(8);
                w.str(key);
                put_rows(&mut w, rows);
            }
            Request::Append { key, expected_rows, table } => {
                w.u8(9);
                w.str(key);
                w.u64(*expected_rows);
                put_table(&mut w, table);
            }
            Request::Rotate { key, column, cutoff } => {
                w.u8(10);
                w.str(key);
                w.str(column);
                w.i64(*cutoff);
            }
        }
        w.finish()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            1 => {
                let key = r.str()?;
                let table = get_table(&mut r)?;
                Request::Register { key, table }
            }
            2 => Request::Health,
            3 => {
                let key = r.str()?;
                let exprs = get_exprs(&mut r)?;
                Request::Histogram { key, exprs }
            }
            4 => {
                let key = r.str()?;
                let exprs = get_exprs(&mut r)?;
                Request::ScatterWindow { key, exprs }
            }
            5 => {
                let key = r.str()?;
                let predicate = get_predicate(&mut r, 0)?;
                Request::Bitmap { key, predicate }
            }
            6 => {
                let key = r.str()?;
                let n = r.len()?;
                let exprs = get_vec(&mut r, n, |r| {
                    Ok(if r.bool()? { Some(get_expr(r, 0)?) } else { None })
                })?;
                Request::StatPartials { key, exprs }
            }
            7 => {
                let key = r.str()?;
                let rows = get_rows(&mut r)?;
                Request::Draw { key, rows }
            }
            8 => {
                let key = r.str()?;
                let rows = get_rows(&mut r)?;
                Request::Gather { key, rows }
            }
            9 => {
                let key = r.str()?;
                let expected_rows = r.u64()?;
                let table = get_table(&mut r)?;
                Request::Append { key, expected_rows, table }
            }
            10 => {
                let key = r.str()?;
                let column = r.str()?;
                let cutoff = r.i64()?;
                Request::Rotate { key, column, cutoff }
            }
            t => return Err(DecodeError::new(format!("invalid request tag {t}"))),
        };
        r.expect_end()?;
        Ok(req)
    }
}

/// A shard server's answer to a [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// Shard installed; echoes its row count for validation.
    Registered {
        /// Rows in the registered shard.
        rows: u64,
    },
    /// Liveness answer: registered shard keys, sorted.
    Health {
        /// Sorted shard keys.
        keys: Vec<String>,
    },
    /// Per-group sizes from a histogram pass.
    Histogram {
        /// Group sizes in first-occurrence order.
        sizes: Vec<u64>,
    },
    /// Shard-local group index from a scatter-window pass.
    Window {
        /// The shard-local index.
        index: GroupIndex,
    },
    /// Shard-local filter bitmap.
    Bitmap {
        /// One bit per shard row.
        bitmap: Bitmap,
    },
    /// Per-aggregate numeric column views.
    Partials {
        /// One entry per requested expression (`None` for `COUNT(*)`).
        columns: Vec<Option<ColumnValues>>,
    },
    /// Materialized rows from a draw or gather pass.
    Rows {
        /// Rows in request order.
        table: Table,
    },
    /// The request failed application-side (bad key, bad expression, …).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Batch appended (or a retry acknowledged); echoes the shard's
    /// post-append row count.
    Appended {
        /// Rows in the shard after the append.
        rows: u64,
    },
    /// Rotation applied; reports what it dropped and what survives.
    Rotated {
        /// Rows dropped (window value below the cutoff).
        retired: u64,
        /// Rows in the shard after the rotation.
        rows: u64,
    },
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Registered { rows } => {
                w.u8(1);
                w.u64(*rows);
            }
            Response::Health { keys } => {
                w.u8(2);
                w.len(keys.len());
                for key in keys {
                    w.str(key);
                }
            }
            Response::Histogram { sizes } => {
                w.u8(3);
                w.len(sizes.len());
                for &size in sizes {
                    w.u64(size);
                }
            }
            Response::Window { index } => {
                w.u8(4);
                put_group_index(&mut w, index);
            }
            Response::Bitmap { bitmap } => {
                w.u8(5);
                put_bitmap(&mut w, bitmap);
            }
            Response::Partials { columns } => {
                w.u8(6);
                w.len(columns.len());
                for col in columns {
                    match col {
                        Some(c) => {
                            w.u8(1);
                            put_column_values(&mut w, c);
                        }
                        None => w.u8(0),
                    }
                }
            }
            Response::Rows { table } => {
                w.u8(7);
                put_table(&mut w, table);
            }
            Response::Error { message } => {
                w.u8(8);
                w.str(message);
            }
            Response::Appended { rows } => {
                w.u8(9);
                w.u64(*rows);
            }
            Response::Rotated { retired, rows } => {
                w.u8(10);
                w.u64(*retired);
                w.u64(*rows);
            }
        }
        w.finish()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Registered { rows: r.u64()? },
            2 => {
                let n = r.len()?;
                let keys = get_vec(&mut r, n, |r| r.str())?;
                Response::Health { keys }
            }
            3 => {
                let n = r.len()?;
                let sizes = get_vec(&mut r, n, |r| r.u64())?;
                Response::Histogram { sizes }
            }
            4 => Response::Window { index: get_group_index(&mut r)? },
            5 => Response::Bitmap { bitmap: get_bitmap(&mut r)? },
            6 => {
                let n = r.len()?;
                let columns = get_vec(&mut r, n, |r| {
                    Ok(if r.bool()? { Some(get_column_values(r)?) } else { None })
                })?;
                Response::Partials { columns }
            }
            7 => Response::Rows { table: get_table(&mut r)? },
            8 => Response::Error { message: r.str()? },
            9 => Response::Appended { rows: r.u64()? },
            10 => {
                let retired = r.u64()?;
                let rows = r.u64()?;
                Response::Rotated { retired, rows }
            }
            t => return Err(DecodeError::new(format!("invalid response tag {t}"))),
        };
        r.expect_end()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut b = TableBuilder::new(&[
            ("city", DataType::Str),
            ("value", DataType::Float64),
            ("ts", DataType::Timestamp),
            ("flag", DataType::Bool),
            ("n", DataType::Int64),
        ]);
        b.push_row(&[
            Value::str("hanoi"),
            Value::Float64(1.5),
            Value::Timestamp(1_500_000_000),
            Value::Bool(true),
            Value::Int64(7),
        ])
        .unwrap();
        b.push_row(&[
            Value::str("delhi"),
            Value::Float64(-0.0),
            Value::Timestamp(1_500_000_999),
            Value::Bool(false),
            Value::Int64(-3),
        ])
        .unwrap();
        b.finish()
    }

    // The encoding is canonical (no padding, no optional layouts), so
    // decode followed by re-encode reproducing the input bytes proves the
    // round trip lost nothing.
    fn round_trip_request(req: Request) {
        let bytes = req.encode();
        let decoded = Request::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
    }

    fn round_trip_response(resp: Response) {
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Register { key: "t/0".into(), table: sample_table() });
        round_trip_request(Request::Health);
        round_trip_request(Request::Histogram {
            key: "t/0".into(),
            exprs: vec![ScalarExpr::col("city"), ScalarExpr::year("ts")],
        });
        round_trip_request(Request::ScatterWindow {
            key: "t/0".into(),
            exprs: vec![ScalarExpr::month("ts")],
        });
        round_trip_request(Request::Bitmap {
            key: "t/0".into(),
            predicate: Predicate::cmp("city", CmpOp::Eq, Value::str("hanoi"))
                .and(Predicate::between(ScalarExpr::col("value"), 0.0, 2.0))
                .or(Predicate::True.not()),
        });
        round_trip_request(Request::StatPartials {
            key: "t/0".into(),
            exprs: vec![
                None,
                Some(ScalarExpr::col("value")),
                Some(ScalarExpr::indicator("value", CmpOp::Gt, 1.0)),
            ],
        });
        // Computed expressions: arithmetic trees, literals, and CASE (with
        // and without an ELSE arm) must survive the wire unchanged.
        let arith = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::binary(ArithOp::Mul, ScalarExpr::col("value"), ScalarExpr::lit(2.5)),
            ScalarExpr::binary(ArithOp::Div, ScalarExpr::col("value"), ScalarExpr::lit(-3.0)),
        );
        let case_with_else = ScalarExpr::Case {
            whens: vec![CaseWhen {
                lhs: arith.clone(),
                op: CmpOp::Gt,
                rhs: ScalarExpr::lit(1.0),
                then: ScalarExpr::col("value"),
            }],
            otherwise: Some(Box::new(ScalarExpr::lit(0.0))),
        };
        let case_no_else = ScalarExpr::Case {
            whens: vec![CaseWhen {
                lhs: ScalarExpr::col("value"),
                op: CmpOp::Le,
                rhs: ScalarExpr::lit(7.0),
                then: case_with_else.clone(),
            }],
            otherwise: None,
        };
        round_trip_request(Request::Histogram {
            key: "t/0".into(),
            exprs: vec![arith, case_with_else, case_no_else],
        });
        round_trip_request(Request::Draw { key: "t/0".into(), rows: vec![1, 0, 1] });
        round_trip_request(Request::Gather { key: "t/0".into(), rows: vec![] });
        round_trip_request(Request::Append {
            key: "t/0".into(),
            expected_rows: 12_345,
            table: sample_table(),
        });
        round_trip_request(Request::Rotate {
            key: "t/0".into(),
            column: "ts".into(),
            cutoff: -1_500_000_000,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Registered { rows: 42 });
        round_trip_response(Response::Health { keys: vec!["a/0".into(), "b/1".into()] });
        round_trip_response(Response::Histogram { sizes: vec![3, 1, 9] });
        let table = sample_table();
        let index = GroupIndex::build(&table, &[ScalarExpr::col("city")]).unwrap();
        round_trip_response(Response::Window { index });
        let mut bitmap = Bitmap::new_empty(130);
        bitmap.set(0);
        bitmap.set(129);
        round_trip_response(Response::Bitmap { bitmap });
        round_trip_response(Response::Partials {
            columns: vec![
                None,
                Some(ColumnValues::Dense(vec![1.0, f64::NAN.copysign(-1.0), 3.5])),
                Some(ColumnValues::Sparse(vec![Some(1.0), None, Some(-0.0)])),
            ],
        });
        round_trip_response(Response::Rows { table: sample_table() });
        round_trip_response(Response::Error { message: "no such key".into() });
        round_trip_response(Response::Appended { rows: u64::MAX });
        round_trip_response(Response::Rotated { retired: 7, rows: 35 });
    }

    #[test]
    fn decoded_table_is_byte_identical() {
        // The dictionary rebuild must reproduce the original column bytes,
        // not just equal values: probe via take() on the decoded table.
        let table = sample_table();
        let bytes = Request::encode(&Request::Register { key: "k".into(), table: table.clone() });
        let Request::Register { table: decoded, .. } = Request::decode(&bytes).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.num_rows(), table.num_rows());
        for row in 0..table.num_rows() {
            assert_eq!(format!("{:?}", decoded.row(row)), format!("{:?}", table.row(row)));
        }
        // Re-encoding the decoded table yields the same bytes.
        let again = Request::encode(&Request::Register { key: "k".into(), table: decoded });
        assert_eq!(again, bytes);
    }

    #[test]
    fn nan_bits_survive() {
        let payload = Response::encode(&Response::Partials {
            columns: vec![Some(ColumnValues::Dense(vec![f64::from_bits(0x7ff8_0000_dead_beef)]))],
        });
        let Response::Partials { columns } = Response::decode(&payload).unwrap() else {
            panic!("wrong variant");
        };
        let Some(ColumnValues::Dense(values)) = &columns[0] else { panic!("wrong column") };
        assert_eq!(values[0].to_bits(), 0x7ff8_0000_dead_beef);
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let bytes = Request::encode(&Request::Register { key: "k".into(), table: sample_table() });
        for cut in 0..bytes.len() {
            assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::encode(&Request::Health);
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Tag 2 (health keys) followed by an absurd length must fail fast.
        let mut w = Writer::new();
        w.u8(2);
        w.u64(u64::MAX);
        assert!(Response::decode(&w.finish()).is_err());
    }

    #[test]
    fn length_claims_are_bounded_by_remaining_bytes() {
        // A health response claiming 5 keys with zero bytes left must be
        // rejected by the length guard itself (the claim fits the *total*
        // payload size, so only a remaining-bytes bound catches it before
        // any allocation or element decode).
        let mut w = Writer::new();
        w.u8(2);
        w.u64(5);
        let err = Response::decode(&w.finish()).unwrap_err();
        assert!(err.0.contains("exceeds remaining"), "got {err}");
    }

    #[test]
    fn deep_predicate_nesting_is_rejected() {
        let mut w = Writer::new();
        for _ in 0..(MAX_DEPTH + 2) {
            w.u8(6); // Not(
        }
        w.u8(0); // True
        let mut payload = vec![5u8]; // request tag: Bitmap
        let mut key = Writer::new();
        key.str("k");
        payload.extend_from_slice(&key.finish());
        payload.extend_from_slice(&w.finish());
        assert!(Request::decode(&payload).is_err());
    }
}

//! A per-peer circuit breaker.
//!
//! Transport failures increment a counter; at the threshold the circuit
//! opens and requests are rejected locally for a cooldown period — a dead
//! shard server costs one timeout per cooldown instead of one per request.
//! After the cooldown one probe request is admitted (half-open); its result
//! closes or re-opens the circuit.
//!
//! Application-level errors (a bad key, a malformed expression) are the
//! caller's bug, not the peer's health, and must not be recorded here.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// Failure-counting breaker guarding one peer connection.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// Breaker that opens after `threshold` consecutive transport failures
    /// and probes again after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    /// May a request proceed right now? Open circuits admit one probe once
    /// the cooldown has elapsed.
    pub fn admit(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether the circuit is currently refusing requests.
    pub fn is_open(&self) -> bool {
        matches!(*self.state.lock().unwrap(), State::Open { .. })
    }

    /// Record a successful round trip: the circuit closes fully.
    pub fn record_success(&self) {
        *self.state.lock().unwrap() = State::Closed { failures: 0 };
    }

    /// Record a transport failure. Returns `true` when this failure opened
    /// the circuit (for counters/logging).
    pub fn record_failure(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    *state = State::Open { since: Instant::now() };
                    true
                } else {
                    *state = State::Closed { failures };
                    false
                }
            }
            // A failed half-open probe re-opens for a fresh cooldown but is
            // not a new "open" event for counting purposes.
            State::HalfOpen => {
                *state = State::Open { since: Instant::now() };
                false
            }
            State::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_at_threshold() {
        let cb = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(!cb.record_failure());
        assert!(!cb.record_failure());
        assert!(cb.admit());
        assert!(cb.record_failure());
        assert!(cb.is_open());
        assert!(!cb.admit());
    }

    #[test]
    fn success_resets_failure_count() {
        let cb = CircuitBreaker::new(2, Duration::from_secs(60));
        cb.record_failure();
        cb.record_success();
        assert!(!cb.record_failure());
        assert!(!cb.is_open());
    }

    #[test]
    fn half_open_probe_after_cooldown() {
        let cb = CircuitBreaker::new(1, Duration::from_millis(0));
        assert!(cb.record_failure());
        // Zero cooldown: the next admit flips to half-open.
        assert!(cb.admit());
        assert!(!cb.is_open());
        // A failed probe re-opens without counting as a new open.
        assert!(!cb.record_failure());
        assert!(cb.is_open());
        // A successful probe closes for good.
        assert!(cb.admit());
        cb.record_success();
        assert!(!cb.is_open());
        assert!(cb.admit());
    }
}

//! Sharded tables: one logical row space over independently-owned shards.
//!
//! A [`ShardedTable`] is a list of schema-identical [`Table`]s whose rows
//! concatenate, in shard order, into one logical table. Every scatter-gather
//! pass in the workspace treats a shard as a *coarser partition*: work runs
//! per shard (and per fixed-size partition within each shard), and partials
//! merge in **fixed shard order, then partition order** — the same ordered
//! merge discipline the execution layer uses for partitions, lifted one
//! level. The contract that falls out is the one the rest of the stack
//! relies on:
//!
//! > Every pass over a `ShardedTable` is **byte-identical** to the same
//! > pass over the concatenated single table, for any shard layout
//! > (uneven or empty shards included) and any thread count.
//!
//! Integer passes (group-index interning, predicate bitmaps, the bucket
//! scatter) get this from ordered merges alone. Float passes (statistics,
//! exact aggregation) get it by anchoring their partition boundaries to the
//! *global* row space (see [`ShardedTable::segments`]): a partial is always
//! a whole global partition, assembled from the shard segments that cover
//! it, so the accumulation chain never depends on where shard boundaries
//! fall.
//!
//! A shard owns its column storage outright — nothing is shared with its
//! siblings — so a future remote shard is just one whose segments arrive
//! over the wire.
//!
//! The contract, demonstrated (note the *uneven* split and the exact
//! float equality):
//!
//! ```
//! use cvopt_table::{sql, DataType, ShardedTable, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
//! for i in 0..1000u32 {
//!     let g = ["a", "b", "c"][(i % 3) as usize];
//!     b.push_row(&[Value::str(g), Value::Float64((i as f64 * 0.7).sin())]).unwrap();
//! }
//! let table = b.finish();
//! let sharded = ShardedTable::from_tables(vec![
//!     table.take(&(0..137).collect::<Vec<_>>()),      // uneven...
//!     table.take(&(137..137).collect::<Vec<_>>()),    // ...empty...
//!     table.take(&(137..1000).collect::<Vec<_>>()),   // ...and the rest
//! ]).unwrap();
//!
//! let stmt = "SELECT g, AVG(x), SUM(x) FROM t GROUP BY g";
//! let single = sql::run(&table, stmt).unwrap();
//! let scatter = sql::run_sharded(&sharded, stmt).unwrap();
//! assert_eq!(single[0].keys, scatter[0].keys);
//! assert_eq!(single[0].values, scatter[0].values); // exact f64 equality
//! ```

use crate::error::TableError;
use crate::exec::RowRange;
use crate::table::{Table, TableBuilder};
use crate::Result;

/// One contiguous piece of a shard covering part of a global row range.
///
/// Produced by [`ShardedTable::segments`]: a global range is covered by one
/// segment per overlapped shard, in shard order, so `global_start` values
/// are ascending and the segments concatenate back into the range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSegment {
    /// Index of the shard the rows live in.
    pub shard: usize,
    /// Shard-local rows covered, as a half-open range.
    pub local: RowRange,
    /// Global row id of `local.start`.
    pub global_start: usize,
}

impl ShardSegment {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// Whether the segment covers no rows.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }
}

/// A table split into independently-owned shards with a single logical row
/// space (shard 0's rows first, then shard 1's, …).
#[derive(Debug, Clone)]
pub struct ShardedTable {
    shards: Vec<Table>,
    /// `offsets[s]` is the global row id of shard `s`'s first row;
    /// `offsets[num_shards]` is the total row count.
    offsets: Vec<usize>,
}

impl ShardedTable {
    /// Assemble a sharded table from schema-identical shards (empty shards
    /// allowed; at least one shard required so the schema is defined).
    pub fn from_tables(shards: Vec<Table>) -> Result<ShardedTable> {
        let Some(first) = shards.first() else {
            return Err(TableError::invalid("a sharded table needs at least one shard"));
        };
        for (s, shard) in shards.iter().enumerate().skip(1) {
            if shard.schema() != first.schema() {
                return Err(TableError::invalid(format!(
                    "shard {s} schema differs from shard 0's"
                )));
            }
        }
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for shard in &shards {
            total += shard.num_rows();
            offsets.push(total);
        }
        Ok(ShardedTable { shards, offsets })
    }

    /// Split `table` into `num_shards` contiguous shards of near-equal row
    /// counts (the first `n % num_shards` shards get one extra row). Row
    /// order is preserved: concatenating the shards reproduces `table`.
    pub fn split(table: &Table, num_shards: usize) -> Result<ShardedTable> {
        if num_shards == 0 {
            return Err(TableError::invalid("cannot split a table into 0 shards"));
        }
        let n = table.num_rows();
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            let rows: Vec<usize> = (start..start + len).collect();
            shards.push(table.take(&rows));
            start += len;
        }
        Self::from_tables(shards)
    }

    /// The shared schema.
    pub fn schema(&self) -> &crate::schema::Schema {
        self.shards[0].schema()
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total logical rows across all shards.
    pub fn num_rows(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Shard `s`.
    pub fn shard(&self, s: usize) -> &Table {
        &self.shards[s]
    }

    /// All shards in order.
    pub fn shards(&self) -> &[Table] {
        &self.shards
    }

    /// Global row id of shard `s`'s first row (and one past the last shard's
    /// end at index `num_shards`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Per-shard row counts, in shard order (the shard *layout*; folded
    /// into engine fingerprints so a re-layout is a different cache key).
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(Table::num_rows).collect()
    }

    /// The shard containing global `row`, and the row's shard-local id.
    pub fn locate(&self, row: usize) -> (usize, usize) {
        debug_assert!(row < self.num_rows(), "row {row} out of range");
        // partition_point finds the first shard whose end exceeds `row`;
        // empty shards are skipped because their start == end.
        let shard = self.offsets.partition_point(|&o| o <= row) - 1;
        // `partition_point` lands on the last shard *starting* at or before
        // `row`; skip back over empty shards that share the same offset.
        let shard = (0..=shard).rev().find(|&s| self.offsets[s + 1] > row).expect("row in range");
        (shard, row - self.offsets[shard])
    }

    /// The shard segments covering the global row range `[range.start,
    /// range.end)`, in shard order. Empty shards contribute no segment.
    pub fn segments(&self, range: RowRange) -> Vec<ShardSegment> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let shard_start = self.offsets[s];
            let shard_end = shard_start + shard.num_rows();
            let start = range.start.max(shard_start);
            let end = range.end.min(shard_end);
            if start < end {
                out.push(ShardSegment {
                    shard: s,
                    local: RowRange { start: start - shard_start, end: end - shard_start },
                    global_start: start,
                });
            }
        }
        out
    }

    /// Copy the rows with global ids in `rows` (in the given order) into a
    /// standalone [`Table`] — the sharded counterpart of [`Table::take`].
    pub fn gather(&self, rows: &[usize]) -> Table {
        let mut b = TableBuilder::from_schema(self.schema().clone());
        b.reserve(rows.len());
        for &row in rows {
            let (shard, local) = self.locate(row);
            let values = self.shards[shard].row(local);
            b.push_row(&values).expect("schema-compatible row");
        }
        b.finish()
    }

    /// Concatenate every shard back into one [`Table`] (global row order).
    pub fn to_table(&self) -> Table {
        let all: Vec<usize> = (0..self.num_rows()).collect();
        self.gather(&all)
    }

    /// A new layout with `batch`'s rows appended to the **last** shard (the
    /// live shard of an ingesting table). Earlier shards are shared
    /// unchanged; only the last shard is rebuilt via [`Table::extended`],
    /// so the logical row stream is the old rows followed by the batch —
    /// identical to appending to the concatenated single table.
    pub fn extended(&self, batch: &Table) -> Result<ShardedTable> {
        let mut shards = self.shards.clone();
        let last = shards.last_mut().expect("at least one shard");
        *last = last.extended(batch)?;
        Self::from_tables(shards)
    }

    /// A new layout keeping only the rows `keep` selects (in global row
    /// order) — time-windowed retention. Each shard is compacted
    /// independently; shards left with zero rows are **dropped** from the
    /// layout (the "oldest shard falls off" of a rotation), except that the
    /// final layout always keeps at least one (possibly empty) shard so the
    /// schema stays defined.
    pub fn retained(&self, keep: impl Fn(usize) -> bool) -> ShardedTable {
        let mut shards = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let offset = self.offsets[s];
            let rows: Vec<usize> =
                (0..shard.num_rows()).filter(|&local| keep(offset + local)).collect();
            if rows.len() == shard.num_rows() {
                shards.push(shard.clone());
            } else if !rows.is_empty() {
                shards.push(shard.take(&rows));
            }
        }
        if shards.is_empty() {
            shards.push(TableBuilder::from_schema(self.schema().clone()).finish());
        }
        Self::from_tables(shards).expect("schema-identical compacted shards")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CHUNK_ROWS;
    use crate::types::{DataType, Value};
    use proptest::prelude::*;

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..n {
            b.push_row(&[Value::str(format!("g{}", i % 7)), Value::Float64(i as f64 * 0.5)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn split_balances_and_preserves_order() {
        let t = table(103);
        let st = ShardedTable::split(&t, 4).unwrap();
        assert_eq!(st.num_shards(), 4);
        assert_eq!(st.num_rows(), 103);
        assert_eq!(st.shard_rows(), vec![26, 26, 26, 25]);
        let round = st.to_table();
        for row in 0..103 {
            assert_eq!(round.row(row), t.row(row));
        }
    }

    #[test]
    fn split_with_more_shards_than_rows_leaves_empty_shards() {
        let t = table(3);
        let st = ShardedTable::split(&t, 5).unwrap();
        assert_eq!(st.shard_rows(), vec![1, 1, 1, 0, 0]);
        assert_eq!(st.num_rows(), 3);
        assert_eq!(st.locate(2), (2, 0));
    }

    #[test]
    fn from_tables_rejects_schema_mismatch_and_emptiness() {
        let a = table(5);
        let mut b = TableBuilder::new(&[("other", DataType::Int64)]);
        b.push_row(&[Value::Int64(1)]).unwrap();
        let err = ShardedTable::from_tables(vec![a, b.finish()]).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        assert!(ShardedTable::from_tables(vec![]).is_err());
    }

    #[test]
    fn locate_skips_empty_shards() {
        let t = table(10);
        let empty = TableBuilder::from_schema(t.schema().clone()).finish();
        let st = ShardedTable::from_tables(vec![
            t.take(&[0, 1, 2]),
            empty.clone(),
            empty,
            t.take(&(3..10).collect::<Vec<_>>()),
        ])
        .unwrap();
        assert_eq!(st.num_rows(), 10);
        assert_eq!(st.locate(0), (0, 0));
        assert_eq!(st.locate(2), (0, 2));
        assert_eq!(st.locate(3), (3, 0));
        assert_eq!(st.locate(9), (3, 6));
    }

    #[test]
    fn segments_cover_range_in_shard_order() {
        let t = table(100);
        let st = ShardedTable::split(&t, 3).unwrap(); // 34, 33, 33
        let segs = st.segments(RowRange { start: 30, end: 70 });
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].shard, 0);
        assert_eq!(segs[0].local, RowRange { start: 30, end: 34 });
        assert_eq!(segs[0].global_start, 30);
        assert_eq!(segs[1].shard, 1);
        assert_eq!(segs[1].local, RowRange { start: 0, end: 33 });
        assert_eq!(segs[1].global_start, 34);
        assert_eq!(segs[2].shard, 2);
        assert_eq!(segs[2].local, RowRange { start: 0, end: 3 });
        assert_eq!(segs[2].global_start, 67);
        let covered: usize = segs.iter().map(ShardSegment::len).sum();
        assert_eq!(covered, 40);
    }

    #[test]
    fn segments_of_empty_range_are_empty() {
        let t = table(10);
        let st = ShardedTable::split(&t, 2).unwrap();
        assert!(st.segments(RowRange { start: 4, end: 4 }).is_empty());
    }

    #[test]
    fn gather_matches_take_on_concatenation() {
        let t = table(57);
        let st = ShardedTable::split(&t, 3).unwrap();
        let rows = [56usize, 0, 20, 19, 41];
        let gathered = st.gather(&rows);
        let taken = t.take(&rows);
        for i in 0..rows.len() {
            assert_eq!(gathered.row(i), taken.row(i));
        }
    }

    #[test]
    fn segments_at_partition_scale() {
        // A shard range spanning several execution partitions still maps to
        // exactly one segment when it lies inside one shard.
        let t = table(2 * CHUNK_ROWS / 64); // keep the fixture fast
        let st = ShardedTable::split(&t, 2).unwrap();
        let segs = st.segments(RowRange { start: 0, end: t.num_rows() });
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].global_start, 0);
        assert_eq!(segs[1].global_start, t.num_rows() / 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Splitting into k shards round-trips: concatenation reproduces
        /// the table row for row, for any k (more shards than rows ⇒ empty
        /// shards).
        #[test]
        fn split_round_trips(n in 0usize..200, k in 1usize..=5) {
            let t = table(n);
            let st = ShardedTable::split(&t, k).unwrap();
            prop_assert_eq!(st.num_shards(), k);
            prop_assert_eq!(st.num_rows(), n);
            let round = st.to_table();
            for row in 0..n {
                prop_assert_eq!(round.row(row), t.row(row));
            }
        }

        /// `locate` inverts the offset layout for arbitrary (possibly
        /// empty) shard size lists.
        #[test]
        fn locate_inverts_offsets(sizes in proptest::collection::vec(0usize..20, 1..6)) {
            let total: usize = sizes.iter().sum();
            let t = table(total);
            let mut shards = Vec::new();
            let mut start = 0;
            for &len in &sizes {
                shards.push(t.take(&(start..start + len).collect::<Vec<_>>()));
                start += len;
            }
            let st = ShardedTable::from_tables(shards).unwrap();
            for row in 0..total {
                let (s, local) = st.locate(row);
                prop_assert_eq!(st.offsets()[s] + local, row);
                prop_assert!(local < st.shard(s).num_rows());
            }
        }
    }
}

//! A deterministic build-side hash join.
//!
//! [`hash_join`] materializes the inner equi-join of a fact table against a
//! (small) dimension table: the dimension side is hashed once, the fact
//! side is probed per fixed-size partition, and the per-partition match
//! lists are concatenated **in partition order** — so the output rows are
//! in global fact-row order for any thread count. [`hash_join_sharded`]
//! joins each fact shard in shard order, which is global row order, so its
//! output is identical to joining the concatenated fact table.
//!
//! The output is an ordinary [`Table`]: downstream grouping, sampling, and
//! their determinism contracts apply to it unchanged.

use crate::error::TableError;
use crate::exec::{self, ExecOptions, RowRange, CHUNK_ROWS};
use crate::fxhash::FxHashMap;
use crate::shard::ShardedTable;
use crate::table::{Table, TableBuilder};
use crate::types::DataType;
use crate::Result;

/// Dimension rows per join key: the build side of the join. Row lists are
/// ascending, so a fact row's matches are emitted in dimension row order.
enum BuildSide {
    /// String keys, pre-translated to fact dictionary codes: entry `c`
    /// holds the dimension rows whose key equals fact dictionary entry `c`.
    ByFactCode(Vec<Vec<u32>>),
    /// Integer-like keys (Int64 / Timestamp).
    ByInt(FxHashMap<i64, Vec<u32>>),
}

fn build_side(fact: &Table, dim: &Table, fact_key: &str, dim_key: &str) -> Result<BuildSide> {
    let fact_col = fact.column_by_name(fact_key)?;
    let dim_col = dim.column_by_name(dim_key)?;
    let (ft, dt) = (fact_col.data_type(), dim_col.data_type());
    if ft != dt {
        return Err(TableError::invalid(format!(
            "join keys have different types: {fact_key} is {ft}, {dim_key} is {dt}"
        )));
    }
    match ft {
        DataType::Str => {
            // The two tables have independent dictionaries, so string keys
            // match by text. Group dimension rows by key text, then
            // translate once per fact dictionary entry — probing is then a
            // single indexed load per fact row.
            let dim_dict = dim_col.dictionary().expect("str column has a dictionary");
            let dim_codes = dim_col.str_codes().expect("str column has codes");
            let mut by_dim_code: Vec<Vec<u32>> = vec![Vec::new(); dim_dict.len()];
            for (row, &code) in dim_codes.iter().enumerate() {
                by_dim_code[code as usize].push(row as u32);
            }
            let fact_dict = fact_col.dictionary().expect("str column has a dictionary");
            let by_fact_code = (0..fact_dict.len() as u32)
                .map(|c| match dim_dict.code_of(fact_dict.get(c)) {
                    Some(d) => by_dim_code[d as usize].clone(),
                    None => Vec::new(),
                })
                .collect();
            Ok(BuildSide::ByFactCode(by_fact_code))
        }
        DataType::Int64 | DataType::Timestamp => {
            let mut by_key: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
            for row in 0..dim.num_rows() {
                if let Some(k) = dim_col.i64_at(row) {
                    by_key.entry(k).or_default().push(row as u32);
                }
            }
            Ok(BuildSide::ByInt(by_key))
        }
        other => Err(TableError::invalid(format!(
            "join keys of type {other} are not supported (use string or integer keys)"
        ))),
    }
}

impl BuildSide {
    /// Dimension rows matching fact row `row`, ascending. Empty when the
    /// fact key is missing or unmatched (inner join drops the row).
    fn matches<'a>(&'a self, fact_col: &crate::column::Column, row: usize) -> &'a [u32] {
        match self {
            BuildSide::ByFactCode(by_code) => {
                let code = fact_col.str_code_at(row).expect("str column has codes");
                &by_code[code as usize]
            }
            BuildSide::ByInt(by_key) => match fact_col.i64_at(row) {
                Some(k) => by_key.get(&k).map(Vec::as_slice).unwrap_or(&[]),
                None => &[],
            },
        }
    }
}

/// The joined output schema: every fact column, then every dimension
/// column except the join key. A name present on both sides is an error —
/// the output would be ambiguous.
fn joined_schema(fact: &Table, dim: &Table, dim_key: &str) -> Result<crate::schema::Schema> {
    let mut fields = fact.schema().fields().to_vec();
    for field in dim.schema().fields() {
        if field.name == dim_key {
            continue;
        }
        if fields.iter().any(|f| f.name == field.name) {
            return Err(TableError::invalid(format!(
                "column {} exists on both sides of the join; rename one before joining",
                field.name
            )));
        }
        fields.push(field.clone());
    }
    Ok(crate::schema::Schema::from_fields(fields))
}

/// Matched `(fact_row, dim_row)` pairs in global fact-row order: partitions
/// are probed in parallel and concatenated in partition order, so the
/// result is independent of the thread count.
fn probe(fact: &Table, fact_key: &str, side: &BuildSide, options: &ExecOptions) -> Vec<(u32, u32)> {
    let fact_col = fact.column_by_name(fact_key).expect("checked by build_side");
    let n = fact.num_rows();
    let scan = |range: RowRange| {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for row in range.rows() {
            for &dim_row in side.matches(fact_col, row) {
                pairs.push((row as u32, dim_row));
            }
        }
        pairs
    };
    if options.threads() <= 1 || n <= CHUNK_ROWS {
        scan(RowRange { start: 0, end: n })
    } else {
        exec::run_partitioned(
            n,
            options,
            |_, range| scan(range),
            |parts| {
                let mut all = Vec::with_capacity(parts.iter().map(Vec::len).sum());
                for part in parts {
                    all.extend(part);
                }
                all
            },
        )
    }
}

/// Materialize the inner equi-join `fact JOIN dim ON fact_key = dim_key`.
///
/// The dimension side is the build side (hashed once); the fact side is
/// probed per partition. Output rows appear in fact-row order, and a fact
/// row matching several dimension rows yields one output row per match, in
/// dimension row order — byte-identical output for any thread count.
/// String keys match by text (the tables' dictionaries are independent);
/// rows whose key is missing or unmatched are dropped (inner join).
pub fn hash_join(
    fact: &Table,
    dim: &Table,
    fact_key: &str,
    dim_key: &str,
    options: &ExecOptions,
) -> Result<Table> {
    let schema = joined_schema(fact, dim, dim_key)?;
    let side = build_side(fact, dim, fact_key, dim_key)?;
    let pairs = probe(fact, fact_key, &side, options);

    let dim_key_idx = dim.schema().index_of(dim_key)?;
    let mut builder = TableBuilder::from_schema(schema);
    builder.reserve(pairs.len());
    let mut values = Vec::with_capacity(fact.num_columns() + dim.num_columns() - 1);
    for (fact_row, dim_row) in pairs {
        values.clear();
        values.extend(fact.row(fact_row as usize));
        for (idx, column) in dim.columns().iter().enumerate() {
            if idx != dim_key_idx {
                values.push(column.value(dim_row as usize));
            }
        }
        builder.push_row(&values)?;
    }
    Ok(builder.finish())
}

/// [`hash_join`] with a sharded fact side: each shard is joined in shard
/// order — which is global row order — and the shard outputs are
/// concatenated, so the result is **identical to joining the concatenated
/// fact table**, for any shard layout and any thread count.
pub fn hash_join_sharded(
    fact: &ShardedTable,
    dim: &Table,
    fact_key: &str,
    dim_key: &str,
    options: &ExecOptions,
) -> Result<Table> {
    let mut joined: Option<Table> = None;
    for shard in fact.shards() {
        let part = hash_join(shard, dim, fact_key, dim_key, options)?;
        joined = Some(match joined {
            None => part,
            Some(acc) => acc.extended(&part)?,
        });
    }
    match joined {
        Some(table) => Ok(table),
        // A sharded table always has at least one shard, but be total.
        None => {
            let empty = TableBuilder::from_schema(fact.schema().clone()).finish();
            hash_join(&empty, dim, fact_key, dim_key, options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::types::Value;

    fn fact() -> Table {
        let mut b = TableBuilder::new(&[
            ("k", DataType::Str),
            ("v", DataType::Float64),
            ("n", DataType::Int64),
        ]);
        let rows = [("a", 1.0, 1), ("b", 2.0, 2), ("zz", 3.0, 3), ("a", 4.0, 4), ("c", 5.0, 5)];
        for (k, v, n) in rows {
            b.push_row(&[Value::str(k), Value::Float64(v), Value::Int64(n)]).unwrap();
        }
        b.finish()
    }

    fn dim() -> Table {
        let mut b = TableBuilder::new(&[("dk", DataType::Str), ("region", DataType::Str)]);
        for (k, r) in [("b", "south"), ("a", "north"), ("c", "south"), ("d", "east")] {
            b.push_row(&[Value::str(k), Value::str(r)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn inner_join_drops_unmatched_and_keeps_fact_order() {
        let j = hash_join(&fact(), &dim(), "k", "dk", &ExecOptions::sequential()).unwrap();
        // "zz" has no dimension row; dimension key column is dropped.
        assert_eq!(j.schema().names(), vec!["k", "v", "n", "region"]);
        assert_eq!(j.num_rows(), 4);
        let regions: Vec<Value> = (0..4).map(|r| j.column(3).value(r)).collect();
        assert_eq!(
            regions,
            vec![
                Value::str("north"),
                Value::str("south"),
                Value::str("north"),
                Value::str("south")
            ]
        );
        let vs: Vec<Option<f64>> = (0..4).map(|r| j.column(1).f64_at(r)).collect();
        assert_eq!(vs, vec![Some(1.0), Some(2.0), Some(4.0), Some(5.0)]);
    }

    #[test]
    fn duplicate_dim_keys_fan_out_in_dim_row_order() {
        let mut b = TableBuilder::new(&[("dk", DataType::Str), ("tag", DataType::Int64)]);
        for (k, t) in [("a", 10), ("b", 20), ("a", 30)] {
            b.push_row(&[Value::str(k), Value::Int64(t)]).unwrap();
        }
        let d = b.finish();
        let j = hash_join(&fact(), &d, "k", "dk", &ExecOptions::sequential()).unwrap();
        // Fact rows a,b,a fan out in fact order, duplicates in dim row
        // order: a→(10,30), b→(20), a→(10,30). zz and c are unmatched.
        let pairs: Vec<(Option<i64>, Option<i64>)> =
            (0..j.num_rows()).map(|r| (j.column(2).i64_at(r), j.column(3).i64_at(r))).collect();
        assert_eq!(
            pairs,
            vec![
                (Some(1), Some(10)),
                (Some(1), Some(30)),
                (Some(2), Some(20)),
                (Some(4), Some(10)),
                (Some(4), Some(30)),
            ]
        );
    }

    #[test]
    fn int_keys_join() {
        let mut b = TableBuilder::new(&[("id", DataType::Int64), ("w", DataType::Float64)]);
        for (id, w) in [(2i64, 0.5), (1, 0.25)] {
            b.push_row(&[Value::Int64(id), Value::Float64(w)]).unwrap();
        }
        let d = b.finish();
        let j = hash_join(&fact(), &d, "n", "id", &ExecOptions::sequential()).unwrap();
        assert_eq!(j.num_rows(), 2); // n = 1 and n = 2 match
        assert_eq!(j.column(0).value(0), Value::str("a"));
        assert_eq!(j.column(3).f64_at(0), Some(0.25));
        assert_eq!(j.column(3).f64_at(1), Some(0.5));
    }

    #[test]
    fn key_type_mismatch_and_collisions_error() {
        let err = hash_join(&fact(), &dim(), "n", "dk", &ExecOptions::sequential()).unwrap_err();
        assert!(err.to_string().contains("different types"), "{err}");
        let mut b = TableBuilder::new(&[("dk", DataType::Str), ("v", DataType::Float64)]);
        b.push_row(&[Value::str("a"), Value::Float64(9.0)]).unwrap();
        let clash = b.finish();
        let err = hash_join(&fact(), &clash, "k", "dk", &ExecOptions::sequential()).unwrap_err();
        assert!(err.to_string().contains("both sides"), "{err}");
        let err = hash_join(&fact(), &dim(), "v", "dk", &ExecOptions::sequential()).unwrap_err();
        assert!(err.to_string().contains("different types"), "{err}");
    }

    #[test]
    fn float_keys_rejected() {
        let mut b = TableBuilder::new(&[("fk", DataType::Float64)]);
        b.push_row(&[Value::Float64(1.0)]).unwrap();
        let d = b.finish();
        let err = hash_join(&fact(), &d, "v", "fk", &ExecOptions::sequential()).unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn parallel_join_matches_sequential() {
        // Enough fact rows to span several partitions.
        let n = 2 * CHUNK_ROWS + 777;
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Float64)]);
        let mut state = 0xdeadbeefcafef00du64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b.push_row(&[Value::str(format!("k{}", state % 101)), Value::Float64(1.0)]).unwrap();
        }
        let f = b.finish();
        let mut b = TableBuilder::new(&[("dk", DataType::Str), ("grp", DataType::Str)]);
        for i in 0..80 {
            // Keys k0..k79 exist (k80..k100 unmatched), with one duplicate.
            b.push_row(&[Value::str(format!("k{i}")), Value::str(format!("g{}", i % 7))]).unwrap();
            if i == 11 {
                b.push_row(&[Value::str("k11"), Value::str("dup")]).unwrap();
            }
        }
        let d = b.finish();
        let reference = hash_join(&f, &d, "k", "dk", &ExecOptions::sequential()).unwrap();
        for threads in [2usize, 8] {
            let got = hash_join(&f, &d, "k", "dk", &ExecOptions::new(threads)).unwrap();
            assert_eq!(got.num_rows(), reference.num_rows(), "threads {threads}");
            for c in 0..reference.num_columns() {
                for r in (0..reference.num_rows()).step_by(997) {
                    assert_eq!(got.column(c).value(r), reference.column(c).value(r));
                }
            }
        }
        // Sharded fact side: identical to the single-table join.
        for shards in [1usize, 3] {
            let sharded = ShardedTable::split(&f, shards).unwrap();
            let got = hash_join_sharded(&sharded, &d, "k", "dk", &ExecOptions::new(2)).unwrap();
            assert_eq!(got.num_rows(), reference.num_rows(), "shards {shards}");
            for r in (0..reference.num_rows()).step_by(991) {
                assert_eq!(got.row(r), reference.row(r));
            }
        }
    }

    #[test]
    fn joined_table_groups_like_prejoined() {
        let j = hash_join(&fact(), &dim(), "k", "dk", &ExecOptions::sequential()).unwrap();
        let gi = crate::groupby::GroupIndex::build(&j, &[ScalarExpr::col("region")]).unwrap();
        assert_eq!(gi.num_groups(), 2);
        assert_eq!(gi.sizes(), &[2, 2]);
    }

    #[test]
    fn empty_sides() {
        let empty_fact =
            TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Float64)]).finish();
        let j = hash_join(&empty_fact, &dim(), "k", "dk", &ExecOptions::sequential()).unwrap();
        assert_eq!(j.num_rows(), 0);
        assert_eq!(j.schema().names(), vec!["k", "v", "region"]);
        let empty_dim = TableBuilder::new(&[("dk", DataType::Str)]).finish();
        let j = hash_join(&fact(), &empty_dim, "k", "dk", &ExecOptions::sequential()).unwrap();
        assert_eq!(j.num_rows(), 0);
    }
}

//! Aggregate functions and accumulators.

use crate::expr::ScalarExpr;
use crate::predicate::CmpOp;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` / `COUNT(col)` — number of rows.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `VAR(col)` — sample variance (n−1 denominator).
    Var,
    /// `STD(col)` — sample standard deviation.
    Std,
    /// `COUNT_IF(col OP threshold)` — number of rows whose value matches.
    CountIf,
}

impl AggKind {
    /// SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::Var => "VAR",
            AggKind::Std => "STD",
            AggKind::CountIf => "COUNT_IF",
        }
    }
}

/// One aggregate in a query's select list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Which function.
    pub kind: AggKind,
    /// Input expression (`None` only for `COUNT(*)`).
    pub input: Option<ScalarExpr>,
    /// For [`AggKind::CountIf`]: the comparison applied to the input value.
    pub condition: Option<(CmpOp, f64)>,
    /// Output column label.
    pub alias: String,
}

impl AggExpr {
    fn new(kind: AggKind, input: Option<ScalarExpr>, condition: Option<(CmpOp, f64)>) -> Self {
        let alias = match (&input, kind) {
            (None, _) => format!("{}(*)", kind.name()),
            (Some(e), AggKind::CountIf) => {
                let (op, th) = condition.expect("COUNT_IF requires a condition");
                format!("COUNT_IF({} {} {})", e.display_name(), op, th)
            }
            (Some(e), _) => format!("{}({})", kind.name(), e.display_name()),
        };
        AggExpr { kind, input, condition, alias }
    }

    /// `COUNT(*)`.
    pub fn count() -> Self {
        Self::new(AggKind::Count, None, None)
    }

    /// `SUM(col)`.
    pub fn sum(col: impl Into<String>) -> Self {
        Self::new(AggKind::Sum, Some(ScalarExpr::col(col)), None)
    }

    /// `AVG(col)`.
    pub fn avg(col: impl Into<String>) -> Self {
        Self::new(AggKind::Avg, Some(ScalarExpr::col(col)), None)
    }

    /// `MIN(col)`.
    pub fn min(col: impl Into<String>) -> Self {
        Self::new(AggKind::Min, Some(ScalarExpr::col(col)), None)
    }

    /// `MAX(col)`.
    pub fn max(col: impl Into<String>) -> Self {
        Self::new(AggKind::Max, Some(ScalarExpr::col(col)), None)
    }

    /// `VAR(col)` (sample variance).
    pub fn var(col: impl Into<String>) -> Self {
        Self::new(AggKind::Var, Some(ScalarExpr::col(col)), None)
    }

    /// `STD(col)` (sample standard deviation).
    pub fn std(col: impl Into<String>) -> Self {
        Self::new(AggKind::Std, Some(ScalarExpr::col(col)), None)
    }

    /// `COUNT_IF(col OP threshold)`.
    pub fn count_if(col: impl Into<String>, op: CmpOp, threshold: f64) -> Self {
        Self::new(AggKind::CountIf, Some(ScalarExpr::col(col)), Some((op, threshold)))
    }

    /// An aggregate over an arbitrary scalar expression
    /// (`SUM(price * quantity)`, `AVG(CASE … END)`, …). `COUNT_IF` takes
    /// its condition through [`AggExpr::count_if_over`].
    pub fn over(kind: AggKind, expr: ScalarExpr) -> Self {
        debug_assert!(kind != AggKind::CountIf, "use count_if_over for COUNT_IF");
        Self::new(kind, Some(expr), None)
    }

    /// `COUNT_IF(expr OP threshold)` over an arbitrary scalar expression.
    pub fn count_if_over(expr: ScalarExpr, op: CmpOp, threshold: f64) -> Self {
        Self::new(AggKind::CountIf, Some(expr), Some((op, threshold)))
    }

    /// Override the output label.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = alias.into();
        self
    }

    /// Whether the estimate of this aggregate scales with group size
    /// (COUNT/SUM/COUNT_IF) as opposed to being a per-row average (AVG).
    pub fn is_extensive(&self) -> bool {
        matches!(self.kind, AggKind::Count | AggKind::Sum | AggKind::CountIf)
    }
}

/// Independent accumulator chains used by the slice kernels
/// ([`AggState::update_slice`]): lane `j` consumes elements
/// `j, j + LANES, j + 2·LANES, …` and the lanes merge in ascending order,
/// a fixed schedule that makes the kernels deterministic.
pub const LANES: usize = 4;

/// Streaming accumulator covering every [`AggKind`].
///
/// Uses Welford's algorithm for mean/variance so that `merge` (needed when
/// coarsening cube grouping sets) is exact.
#[derive(Debug, Clone, Copy)]
pub struct AggState {
    /// Number of accumulated values.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Default for AggState {
    fn default() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl AggState {
    /// Accumulate one value.
    #[inline]
    pub fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Accumulate a contiguous slice of values through [`LANES`]
    /// independent accumulator chains, merged in lane order.
    ///
    /// Lane `j` consumes `values[j], values[j + LANES], …` with the exact
    /// scalar [`AggState::update`] recurrence, and the lanes are merged
    /// into `self` in ascending lane order — so the result is a pure
    /// function of `values` (never of chunking or thread count) and is
    /// **bit-identical** to [`AggState::update_slice_reference`]. The
    /// independent chains break the loop-carried dependency of scalar
    /// Welford, letting the autovectorizer keep [`LANES`] accumulators in
    /// vector registers.
    ///
    /// Note the lane-merged result may differ from feeding `values` one by
    /// one through [`AggState::update`] in the last ulps of `mean`/`m2`
    /// (different, equally valid, rounding); both orders are deterministic.
    #[inline]
    pub fn update_slice(&mut self, values: &[f64]) {
        let mut count = [0u64; LANES];
        let mut sum = [0.0f64; LANES];
        let mut mean = [0.0f64; LANES];
        let mut m2 = [0.0f64; LANES];
        let mut min = [f64::INFINITY; LANES];
        let mut max = [f64::NEG_INFINITY; LANES];

        let mut chunks = values.chunks_exact(LANES);
        for chunk in &mut chunks {
            for j in 0..LANES {
                let v = chunk[j];
                count[j] += 1;
                sum[j] += v;
                let delta = v - mean[j];
                mean[j] += delta / count[j] as f64;
                m2[j] += delta * (v - mean[j]);
                if v < min[j] {
                    min[j] = v;
                }
                if v > max[j] {
                    max[j] = v;
                }
            }
        }
        for (j, &v) in chunks.remainder().iter().enumerate() {
            count[j] += 1;
            sum[j] += v;
            let delta = v - mean[j];
            mean[j] += delta / count[j] as f64;
            m2[j] += delta * (v - mean[j]);
            if v < min[j] {
                min[j] = v;
            }
            if v > max[j] {
                max[j] = v;
            }
        }

        for j in 0..LANES {
            self.merge(&AggState {
                count: count[j],
                sum: sum[j],
                mean: mean[j],
                m2: m2[j],
                min: min[j],
                max: max[j],
            });
        }
    }

    /// Scalar reference implementation of the [`AggState::update_slice`]
    /// lane-merge contract: [`LANES`] plain accumulators fed round-robin,
    /// merged in lane order. Kept so tests can assert the optimized kernel
    /// matches it with exact `f64` equality.
    pub fn update_slice_reference(&mut self, values: &[f64]) {
        let mut lanes = [AggState::default(); LANES];
        for (i, &v) in values.iter().enumerate() {
            lanes[i % LANES].update(v);
        }
        for lane in &lanes {
            self.merge(lane);
        }
    }

    /// Merge another accumulator into this one (parallel/Chan merge).
    pub fn merge(&mut self, other: &AggState) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalize for the given aggregate kind.
    ///
    /// `CountIf` inputs are accumulated as 0/1 indicators, so its result is
    /// the `sum`.
    pub fn finalize(&self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Count => self.count as f64,
            AggKind::Sum | AggKind::CountIf => self.sum,
            AggKind::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.mean
                }
            }
            AggKind::Min => self.min,
            AggKind::Max => self.max,
            AggKind::Var => self.sample_variance(),
            AggKind::Std => self.sample_variance().sqrt(),
        }
    }

    /// Sample variance (n−1 denominator); 0 for fewer than 2 values.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population variance (n denominator); 0 for empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_aliases() {
        assert_eq!(AggExpr::count().alias, "COUNT(*)");
        assert_eq!(AggExpr::avg("gpa").alias, "AVG(gpa)");
        assert_eq!(AggExpr::count_if("value", CmpOp::Gt, 0.04).alias, "COUNT_IF(value > 0.04)");
        assert_eq!(AggExpr::sum("x").with_alias("agg1").alias, "agg1");
    }

    #[test]
    fn extensive_flags() {
        assert!(AggExpr::count().is_extensive());
        assert!(AggExpr::sum("x").is_extensive());
        assert!(AggExpr::count_if("x", CmpOp::Gt, 0.0).is_extensive());
        assert!(!AggExpr::avg("x").is_extensive());
        assert!(!AggExpr::min("x").is_extensive());
    }

    #[test]
    fn state_basic_stats() {
        let mut s = AggState::default();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.update(v);
        }
        assert_eq!(s.count, 8);
        assert_eq!(s.finalize(AggKind::Sum), 40.0);
        assert_eq!(s.finalize(AggKind::Avg), 5.0);
        assert_eq!(s.finalize(AggKind::Min), 2.0);
        assert_eq!(s.finalize(AggKind::Max), 9.0);
        // Population variance of this classic sequence is 4.
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.finalize(AggKind::Var) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_state_finalize() {
        let s = AggState::default();
        assert_eq!(s.finalize(AggKind::Count), 0.0);
        assert_eq!(s.finalize(AggKind::Sum), 0.0);
        assert!(s.finalize(AggKind::Avg).is_nan());
        assert_eq!(s.finalize(AggKind::Var), 0.0);
    }

    #[test]
    fn single_value_variance_zero() {
        let mut s = AggState::default();
        s.update(5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn merge_empty_cases() {
        let mut a = AggState::default();
        let b = AggState::default();
        a.merge(&b);
        assert_eq!(a.count, 0);
        let mut c = AggState::default();
        c.update(1.0);
        let mut d = AggState::default();
        d.merge(&c);
        assert_eq!(d.count, 1);
        assert_eq!(d.mean, 1.0);
    }

    proptest! {
        #[test]
        fn merge_matches_sequential(xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                    split in 0usize..200) {
            let split = split.min(xs.len());
            let mut whole = AggState::default();
            for &v in &xs { whole.update(v); }
            let mut left = AggState::default();
            for &v in &xs[..split] { left.update(v); }
            let mut right = AggState::default();
            for &v in &xs[split..] { right.update(v); }
            left.merge(&right);
            prop_assert_eq!(left.count, whole.count);
            prop_assert!((left.sum - whole.sum).abs() <= 1e-6 * (1.0 + whole.sum.abs()));
            prop_assert!((left.mean - whole.mean).abs() <= 1e-6 * (1.0 + whole.mean.abs()));
            prop_assert!((left.m2 - whole.m2).abs() <= 1e-4 * (1.0 + whole.m2.abs()));
            prop_assert_eq!(left.min, whole.min);
            prop_assert_eq!(left.max, whole.max);
        }

        /// The optimized lane kernel is bit-identical to its scalar
        /// reference — every field, exact `f64` equality — for any slice
        /// length (including remainders shorter than a chunk) and any
        /// non-empty starting state.
        #[test]
        fn lane_kernel_matches_scalar_reference_exactly(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..300),
            prefix in proptest::collection::vec(-1e6f64..1e6, 0..4),
        ) {
            let mut optimized = AggState::default();
            let mut reference = AggState::default();
            for &v in &prefix {
                optimized.update(v);
                reference.update(v);
            }
            optimized.update_slice(&xs);
            reference.update_slice_reference(&xs);
            prop_assert_eq!(optimized.count, reference.count);
            prop_assert_eq!(optimized.sum.to_bits(), reference.sum.to_bits());
            prop_assert_eq!(optimized.mean.to_bits(), reference.mean.to_bits());
            prop_assert_eq!(optimized.m2.to_bits(), reference.m2.to_bits());
            prop_assert_eq!(optimized.min.to_bits(), reference.min.to_bits());
            prop_assert_eq!(optimized.max.to_bits(), reference.max.to_bits());
        }

        /// The lane kernel stays a faithful accumulator: close to the pure
        /// scalar chain and exact on count/min/max.
        #[test]
        fn lane_kernel_close_to_scalar_chain(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
        ) {
            let mut lanes = AggState::default();
            lanes.update_slice(&xs);
            let mut scalar = AggState::default();
            for &v in &xs { scalar.update(v); }
            prop_assert_eq!(lanes.count, scalar.count);
            prop_assert_eq!(lanes.min.to_bits(), scalar.min.to_bits());
            prop_assert_eq!(lanes.max.to_bits(), scalar.max.to_bits());
            prop_assert!((lanes.sum - scalar.sum).abs() <= 1e-6 * (1.0 + scalar.sum.abs()));
            prop_assert!((lanes.mean - scalar.mean).abs() <= 1e-6 * (1.0 + scalar.mean.abs()));
            prop_assert!((lanes.m2 - scalar.m2).abs() <= 1e-4 * (1.0 + scalar.m2.abs()));
        }

        #[test]
        fn variance_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 0..100)) {
            let mut s = AggState::default();
            for &v in &xs { s.update(v); }
            prop_assert!(s.sample_variance() >= -1e-9);
            prop_assert!(s.population_variance() >= -1e-9);
        }
    }
}

//! Typed columnar storage.

use crate::dict::Dictionary;
use crate::error::TableError;
use crate::types::{DataType, Value};
use crate::Result;

/// A single column of a [`crate::Table`].
///
/// Strings are dictionary encoded: the column stores dense `u32` codes plus a
/// [`Dictionary`]. All other types are plain vectors.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Code → string mapping.
        dict: Dictionary,
    },
    /// Epoch-second timestamps.
    Timestamp(Vec<i64>),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Str => Column::Str { codes: Vec::new(), dict: Dictionary::new() },
            DataType::Timestamp => Column::Timestamp(Vec::new()),
        }
    }

    /// An empty column with pre-allocated row capacity.
    pub fn with_capacity(dtype: DataType, capacity: usize) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => Column::Float64(Vec::with_capacity(capacity)),
            DataType::Bool => Column::Bool(Vec::with_capacity(capacity)),
            DataType::Str => {
                Column::Str { codes: Vec::with_capacity(capacity), dict: Dictionary::new() }
            }
            DataType::Timestamp => Column::Timestamp(Vec::with_capacity(capacity)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Bool(_) => DataType::Bool,
            Column::Str { .. } => DataType::Str,
            Column::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) | Column::Timestamp(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate storage footprint in bytes — a pure function of the
    /// data (fixed per-element widths, dictionary string bytes), never of
    /// platform pointer sizes, so the value is snapshot-stable across
    /// machines. See [`crate::Table::approx_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Column::Int64(v) | Column::Timestamp(v) => 8 * v.len() as u64,
            Column::Float64(v) => 8 * v.len() as u64,
            Column::Bool(v) => v.len() as u64,
            Column::Str { codes, dict } => 4 * codes.len() as u64 + dict.approx_bytes(),
        }
    }

    /// Append one value. The value type must match the column type.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => v.push(*x),
            (Column::Float64(v), Value::Float64(x)) => v.push(*x),
            (Column::Float64(v), Value::Int64(x)) => v.push(*x as f64),
            (Column::Bool(v), Value::Bool(x)) => v.push(*x),
            (Column::Str { codes, dict }, Value::Str(s)) => codes.push(dict.intern(s)),
            (Column::Timestamp(v), Value::Timestamp(x)) => v.push(*x),
            (Column::Timestamp(v), Value::Int64(x)) => v.push(*x),
            (col, v) => {
                return Err(TableError::TypeMismatch {
                    expected: col.data_type(),
                    found: format!("{v:?}"),
                })
            }
        }
        Ok(())
    }

    /// Append every row of `other` (same data type) onto this column.
    ///
    /// Fixed-width columns extend their backing vectors directly; string
    /// columns re-intern `other`'s values in row order, so the combined
    /// dictionary assigns codes in first-occurrence order over the
    /// concatenation — exactly the dictionary a fresh row-by-row build of
    /// the combined data would produce. [`Column::approx_bytes`] therefore
    /// stays a pure function of the data, independent of append history.
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int64(v), Column::Int64(o)) => v.extend_from_slice(o),
            (Column::Float64(v), Column::Float64(o)) => v.extend_from_slice(o),
            (Column::Bool(v), Column::Bool(o)) => v.extend_from_slice(o),
            (Column::Timestamp(v), Column::Timestamp(o)) => v.extend_from_slice(o),
            (Column::Str { codes, dict }, Column::Str { codes: ocodes, dict: odict }) => {
                codes.reserve(ocodes.len());
                codes.extend(ocodes.iter().map(|&c| dict.intern(odict.get(c))));
            }
            (col, other) => {
                return Err(TableError::TypeMismatch {
                    expected: col.data_type(),
                    found: format!("{:?} column", other.data_type()),
                })
            }
        }
        Ok(())
    }

    /// The value at `row` as a dynamically typed [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Float64(v) => Value::Float64(v[row]),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Str { codes, dict } => Value::Str(dict.get_arc(codes[row])),
            Column::Timestamp(v) => Value::Timestamp(v[row]),
        }
    }

    /// Numeric view of the value at `row`, if the column is numeric or bool.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int64(v) | Column::Timestamp(v) => Some(v[row] as f64),
            Column::Float64(v) => Some(v[row]),
            Column::Bool(v) => Some(if v[row] { 1.0 } else { 0.0 }),
            Column::Str { .. } => None,
        }
    }

    /// Integer view of the value at `row`, if the column is integer-like.
    #[inline]
    pub fn i64_at(&self, row: usize) -> Option<i64> {
        match self {
            Column::Int64(v) | Column::Timestamp(v) => Some(v[row]),
            Column::Bool(v) => Some(i64::from(v[row])),
            _ => None,
        }
    }

    /// Dictionary code at `row`, for string columns.
    #[inline]
    pub fn str_code_at(&self, row: usize) -> Option<u32> {
        match self {
            Column::Str { codes, .. } => Some(codes[row]),
            _ => None,
        }
    }

    /// The dictionary, for string columns.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        match self {
            Column::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// The raw code slice, for string columns.
    pub fn str_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Str { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Raw i64 slice for `Int64`/`Timestamp` columns.
    pub fn i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v) | Column::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Raw f64 slice for `Float64` columns.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_int() {
        let mut c = Column::new(DataType::Int64);
        c.push(&Value::Int64(7)).unwrap();
        c.push(&Value::Int64(-3)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int64(-3));
        assert_eq!(c.f64_at(0), Some(7.0));
        assert_eq!(c.i64_at(0), Some(7));
    }

    #[test]
    fn push_int_into_float_widens() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Int64(2)).unwrap();
        c.push(&Value::Float64(0.5)).unwrap();
        assert_eq!(c.f64_slice().unwrap(), &[2.0, 0.5]);
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::new(DataType::Int64);
        let err = c.push(&Value::str("x")).unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { expected: DataType::Int64, .. }));
    }

    #[test]
    fn string_dictionary_encoding() {
        let mut c = Column::new(DataType::Str);
        for s in ["US", "VN", "US", "US", "IN"] {
            c.push(&Value::str(s)).unwrap();
        }
        assert_eq!(c.str_codes().unwrap(), &[0, 1, 0, 0, 2]);
        assert_eq!(c.dictionary().unwrap().len(), 3);
        assert_eq!(c.value(4), Value::str("IN"));
        assert_eq!(c.str_code_at(2), Some(0));
        assert_eq!(c.f64_at(0), None);
    }

    #[test]
    fn timestamp_accepts_int() {
        let mut c = Column::new(DataType::Timestamp);
        c.push(&Value::Timestamp(100)).unwrap();
        c.push(&Value::Int64(200)).unwrap();
        assert_eq!(c.i64_slice().unwrap(), &[100, 200]);
        assert_eq!(c.value(0), Value::Timestamp(100));
    }

    #[test]
    fn bool_numeric_view() {
        let mut c = Column::new(DataType::Bool);
        c.push(&Value::Bool(true)).unwrap();
        c.push(&Value::Bool(false)).unwrap();
        assert_eq!(c.f64_at(0), Some(1.0));
        assert_eq!(c.f64_at(1), Some(0.0));
        assert_eq!(c.i64_at(0), Some(1));
    }

    #[test]
    fn with_capacity_empty() {
        let c = Column::with_capacity(DataType::Str, 128);
        assert!(c.is_empty());
        assert_eq!(c.data_type(), DataType::Str);
    }
}

//! A small, fast, non-cryptographic hasher (the `FxHash` algorithm used by
//! rustc), implemented in-tree to avoid an extra dependency.
//!
//! Group-by keys are short integer tuples; SipHash (the std default) is a
//! measurable bottleneck for them, while FxHash is essentially a multiply
//! and a rotate per word. HashDoS resistance is irrelevant here: keys come
//! from our own dictionary codes, not from untrusted input.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` alias using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc-style Fx hasher. One wrapping multiply + rotate per 8 bytes.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_smoke() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"x"));
    }

    #[test]
    fn unaligned_byte_lengths() {
        // Exercise the remainder path in `write`.
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish(), "len {len}");
        }
    }

    #[test]
    fn spread_over_buckets() {
        // Sanity: sequential keys should not all collide mod a power of two.
        let mut buckets = [0usize; 16];
        for i in 0..1600u64 {
            buckets[(hash_of(&i) % 16) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 0), "all buckets used: {buckets:?}");
    }
}

//! # cvopt-table
//!
//! A small, dependency-free, in-memory columnar table engine.
//!
//! This crate is the *substrate* for the [CVOPT](https://arxiv.org/abs/1909.02629)
//! group-by sampling library: it provides everything the sampling framework
//! needs from a database engine, without pulling in a full query engine:
//!
//! * typed columns ([`Column`]) with dictionary-encoded strings,
//! * a [`Table`] built via [`TableBuilder`], and a sharded counterpart
//!   ([`ShardedTable`]) whose scatter-gather passes produce byte-identical
//!   results to the single-table path for any shard layout,
//! * predicate evaluation ([`Predicate`]) into [`Bitmap`]s,
//! * scalar expressions ([`ScalarExpr`]) including calendar functions
//!   (`YEAR`/`MONTH`/`HOUR`) over epoch-second timestamps,
//! * an exact group-by/aggregate executor ([`GroupByQuery`]) with
//!   `WITH CUBE` support, used both to produce ground truth for experiments
//!   and as the shared grouping machinery for stratified sampling,
//! * a SQL subset front-end ([`sql`], with a session-level execution
//!   context [`sql::Session`]) and CSV I/O ([`csv`]).
//!
//! ## Example
//!
//! ```
//! use cvopt_table::{TableBuilder, DataType, Value, sql};
//!
//! let mut b = TableBuilder::new(&[
//!     ("major", DataType::Str),
//!     ("gpa", DataType::Float64),
//! ]);
//! b.push_row(&[Value::str("CS"), Value::Float64(3.4)]).unwrap();
//! b.push_row(&[Value::str("CS"), Value::Float64(3.1)]).unwrap();
//! b.push_row(&[Value::str("EE"), Value::Float64(3.5)]).unwrap();
//! let table = b.finish();
//!
//! let result = sql::run(&table, "SELECT major, AVG(gpa) FROM t GROUP BY major").unwrap();
//! assert_eq!(result[0].num_groups(), 2);
//! ```

pub mod agg;
pub mod bitmap;
pub mod column;
pub mod csv;
pub mod cube;
pub mod dict;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fxhash;
pub mod groupby;
pub mod join;
pub mod predicate;
pub mod query;
pub mod reader;
pub mod schema;
pub mod shard;
pub mod sql;
pub mod table;
pub mod time;
pub mod types;

pub use agg::{AggExpr, AggKind};
pub use bitmap::Bitmap;
pub use column::Column;
pub use cube::grouping_sets;
pub use dict::Dictionary;
pub use error::TableError;
pub use exec::{ExecOptions, RowRange};
pub use expr::{ArithOp, CaseWhen, ScalarExpr};
pub use groupby::{GroupIndex, GroupStrategy, KeyAtom};
pub use join::{hash_join, hash_join_sharded};
pub use predicate::{CmpOp, Predicate};
pub use query::{GroupByQuery, QueryResult};
pub use reader::{ColumnValues, LocalShard, ShardReader, ShardSet};
pub use schema::{Field, Schema};
pub use shard::{ShardSegment, ShardedTable};
pub use table::{Table, TableBuilder};
pub use types::{DataType, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;

//! A packed bitmap over row ids, used as the result of predicate evaluation.

/// A fixed-length bitset over `len` rows, stored as 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap over `len` rows.
    pub fn new_empty(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-one bitmap over `len` rows.
    pub fn new_full(len: usize) -> Self {
        let mut bm = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        bm.mask_tail();
        bm
    }

    /// Build from a per-row closure.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bm = Bitmap::new_empty(len);
        for row in 0..len {
            if f(row) {
                bm.set(row);
            }
        }
        bm
    }

    /// Number of rows covered (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `row`.
    #[inline]
    pub fn set(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Clear bit `row`.
    #[inline]
    pub fn clear(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] &= !(1u64 << (row % 64));
    }

    /// Whether bit `row` is set.
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with `other` (must have equal length).
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other` (must have equal length).
    pub fn or_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn not_inplace(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// Fraction of rows selected (0.0 for an empty bitmap).
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Zero out the bits past `len` in the final word so that `count_ones`
    /// and complement stay correct.
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

/// Iterator over set bits of a [`Bitmap`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        let e = Bitmap::new_empty(130);
        assert_eq!(e.count_ones(), 0);
        let f = Bitmap::new_full(130);
        assert_eq!(f.count_ones(), 130);
        assert!(f.get(129));
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new_empty(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn not_respects_tail() {
        let mut bm = Bitmap::new_empty(70);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 70);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn iter_ones_matches_get() {
        let bm = Bitmap::from_fn(200, |i| i % 7 == 0);
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn selectivity() {
        let bm = Bitmap::from_fn(100, |i| i < 25);
        assert!((bm.selectivity() - 0.25).abs() < 1e-12);
        assert_eq!(Bitmap::new_empty(0).selectivity(), 0.0);
    }

    #[test]
    fn zero_length() {
        let bm = Bitmap::new_full(0);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    proptest! {
        #[test]
        fn and_or_de_morgan(bits_a in proptest::collection::vec(any::<bool>(), 0..300),
                            bits_b_seed in any::<u64>()) {
            let len = bits_a.len();
            let mut a = Bitmap::new_empty(len);
            let mut b = Bitmap::new_empty(len);
            for (i, &bit) in bits_a.iter().enumerate() {
                if bit { a.set(i); }
                if (bits_b_seed.rotate_left((i % 64) as u32) & 1) == 1 { b.set(i); }
            }
            // !(a & b) == !a | !b
            let mut lhs = a.clone();
            lhs.and_inplace(&b);
            lhs.not_inplace();
            let mut na = a.clone();
            na.not_inplace();
            let mut nb = b.clone();
            nb.not_inplace();
            na.or_inplace(&nb);
            prop_assert_eq!(lhs, na);
        }

        #[test]
        fn count_matches_iter(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let bm = Bitmap::from_fn(bits.len(), |i| bits[i]);
            prop_assert_eq!(bm.count_ones(), bm.iter_ones().count());
            prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
        }
    }
}

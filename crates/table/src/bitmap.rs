//! A packed bitmap over row ids, used as the result of predicate evaluation.

use crate::exec::{self, ExecOptions, CHUNK_ROWS};

/// A fixed-length bitset over `len` rows, stored as 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap over `len` rows.
    pub fn new_empty(len: usize) -> Self {
        Bitmap { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-one bitmap over `len` rows.
    pub fn new_full(len: usize) -> Self {
        let mut bm = Bitmap { words: vec![u64::MAX; len.div_ceil(64)], len };
        bm.mask_tail();
        bm
    }

    /// Build from a per-row closure.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bm = Bitmap::new_empty(len);
        for row in 0..len {
            if f(row) {
                bm.set(row);
            }
        }
        bm
    }

    /// Build from a per-row closure, evaluated chunk-parallel. Partition
    /// boundaries are word-aligned (see [`exec::CHUNK_ROWS`]), so each
    /// worker fills disjoint words and the result is identical to
    /// [`Bitmap::from_fn`] for any thread count.
    pub fn from_fn_with(
        len: usize,
        options: &ExecOptions,
        f: impl Fn(usize) -> bool + Sync,
    ) -> Self {
        let mut bm = Bitmap::new_empty(len);
        let words_per_chunk = CHUNK_ROWS / 64;
        exec::for_each_chunk_mut(&mut bm.words, words_per_chunk, options, |chunk, words| {
            let base = chunk * CHUNK_ROWS;
            for (wi, slot) in words.iter_mut().enumerate() {
                let row0 = base + wi * 64;
                let mut word = 0u64;
                for bit in 0..64usize.min(len - row0) {
                    if f(row0 + bit) {
                        word |= 1 << bit;
                    }
                }
                *slot = word;
            }
        });
        bm
    }

    /// Number of rows covered (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `row`.
    #[inline]
    pub fn set(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Clear bit `row`.
    #[inline]
    pub fn clear(&mut self, row: usize) {
        debug_assert!(row < self.len);
        self.words[row / 64] &= !(1u64 << (row % 64));
    }

    /// Whether bit `row` is set.
    #[inline]
    pub fn get(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with `other` (must have equal length).
    pub fn and_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other` (must have equal length).
    pub fn or_inplace(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn not_inplace(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            end: self.len,
        }
    }

    /// Iterator over set bits within `[start, end)`, ascending. Used by the
    /// partitioned executors to scan one partition's slice of a filter.
    pub fn iter_ones_in(&self, start: usize, end: usize) -> Ones<'_> {
        let end = end.min(self.len);
        let start = start.min(end);
        let word_idx = start / 64;
        let mut current = self.words.get(word_idx).copied().unwrap_or(0);
        // Mask off bits below `start` within the first word.
        current &= u64::MAX << (start % 64);
        Ones { words: &self.words, word_idx, current, end }
    }

    /// The packed 64-bit words backing the bitmap, tail bits zeroed.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from its packed words (the inverse of
    /// [`Bitmap::words`]). The word count must match `len`; tail bits
    /// past `len` are masked off.
    pub fn from_words(words: Vec<u64>, len: usize) -> crate::Result<Bitmap> {
        if words.len() != len.div_ceil(64) {
            return Err(crate::TableError::invalid(format!(
                "bitmap word count {} does not cover {len} rows",
                words.len()
            )));
        }
        let mut bm = Bitmap { words, len };
        bm.mask_tail();
        Ok(bm)
    }

    /// Fraction of rows selected (0.0 for an empty bitmap).
    pub fn selectivity(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Zero out the bits past `len` in the final word so that `count_ones`
    /// and complement stay correct.
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }
}

/// Iterator over set bits of a [`Bitmap`] (optionally bounded below `end`).
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    end: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() || self.word_idx * 64 >= self.end {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // drop lowest set bit
        let row = self.word_idx * 64 + bit;
        if row >= self.end {
            return None;
        }
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_full() {
        let e = Bitmap::new_empty(130);
        assert_eq!(e.count_ones(), 0);
        let f = Bitmap::new_full(130);
        assert_eq!(f.count_ones(), 130);
        assert!(f.get(129));
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new_empty(100);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(99));
        assert!(!bm.get(1));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.get(63));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn not_respects_tail() {
        let mut bm = Bitmap::new_empty(70);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 70);
        bm.not_inplace();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn iter_ones_matches_get() {
        let bm = Bitmap::from_fn(200, |i| i % 7 == 0);
        let ones: Vec<usize> = bm.iter_ones().collect();
        let expected: Vec<usize> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(ones, expected);
    }

    #[test]
    fn selectivity() {
        let bm = Bitmap::from_fn(100, |i| i < 25);
        assert!((bm.selectivity() - 0.25).abs() < 1e-12);
        assert_eq!(Bitmap::new_empty(0).selectivity(), 0.0);
    }

    #[test]
    fn zero_length() {
        let bm = Bitmap::new_full(0);
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn from_fn_with_matches_sequential() {
        use crate::exec::ExecOptions;
        for len in [0usize, 1, 100, 64 * 1024, 3 * 64 * 1024 + 777] {
            let f = |i: usize| i.is_multiple_of(13) || i % 7 == 3;
            let seq = Bitmap::from_fn(len, f);
            for threads in [1usize, 2, 8] {
                let par = Bitmap::from_fn_with(len, &ExecOptions::new(threads), f);
                assert_eq!(par, seq, "len {len}, threads {threads}");
            }
        }
    }

    #[test]
    fn iter_ones_in_bounds() {
        let bm = Bitmap::from_fn(300, |i| i % 5 == 0);
        let got: Vec<usize> = bm.iter_ones_in(63, 131).collect();
        let expected: Vec<usize> = (63..131).filter(|i| i % 5 == 0).collect();
        assert_eq!(got, expected);
        assert_eq!(bm.iter_ones_in(0, 300).count(), bm.iter_ones().count());
        assert_eq!(bm.iter_ones_in(100, 100).count(), 0);
        assert_eq!(bm.iter_ones_in(295, 10_000).collect::<Vec<_>>(), vec![295]);
    }

    proptest! {
        #[test]
        fn and_or_de_morgan(bits_a in proptest::collection::vec(any::<bool>(), 0..300),
                            bits_b_seed in any::<u64>()) {
            let len = bits_a.len();
            let mut a = Bitmap::new_empty(len);
            let mut b = Bitmap::new_empty(len);
            for (i, &bit) in bits_a.iter().enumerate() {
                if bit { a.set(i); }
                if (bits_b_seed.rotate_left((i % 64) as u32) & 1) == 1 { b.set(i); }
            }
            // !(a & b) == !a | !b
            let mut lhs = a.clone();
            lhs.and_inplace(&b);
            lhs.not_inplace();
            let mut na = a.clone();
            na.not_inplace();
            let mut nb = b.clone();
            nb.not_inplace();
            na.or_inplace(&nb);
            prop_assert_eq!(lhs, na);
        }

        #[test]
        fn count_matches_iter(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
            let bm = Bitmap::from_fn(bits.len(), |i| bits[i]);
            prop_assert_eq!(bm.count_ones(), bm.iter_ones().count());
            prop_assert_eq!(bm.count_ones(), bits.iter().filter(|&&b| b).count());
        }
    }
}

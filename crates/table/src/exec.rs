//! Deterministic chunked-parallel execution.
//!
//! Every per-row hot path in the workspace (group-index build, the
//! statistics pass, predicate evaluation, exact and estimated group-by
//! scans, the stratified draw) runs through this module's scatter-gather
//! drivers. The design invariant is **thread-count independence**: results
//! are bit-identical whatever `threads` is, because
//!
//! 1. work is split into *partitions* whose boundaries depend only on the
//!    input size (fixed [`CHUNK_ROWS`]-row chunks), never on the thread
//!    count — threads merely pull partitions from a shared queue; and
//! 2. per-partition results are reduced **in partition order**, so even
//!    non-associative float accumulation rounds identically every run.
//!
//! This is the partitioned hash-aggregation layout (per-thread state, one
//! ordered merge) that the group-by literature recommends for exactly this
//! workload, with determinism layered on top so that seeded sampling is
//! reproducible on any machine.
//!
//! Partition boundaries are multiples of 64, so bitmap producers can write
//! whole words without synchronization.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per partition (2^16, a multiple of 64). Chosen so a partition's
/// working set stays cache-friendly while keeping per-partition overhead
/// negligible; on a 1M-row table this yields 16 partitions.
pub const CHUNK_ROWS: usize = 1 << 16;

/// Thread-count options for the partitioned drivers.
///
/// The default is one thread per available core
/// (`std::thread::available_parallelism`). Because results never depend on
/// the thread count, callers choose purely on deployment grounds:
/// [`ExecOptions::sequential`] for embedding in an outer parallel
/// scheduler, explicit counts for benchmarking, a per-request slice of a
/// server-wide budget for serving.
///
/// ```
/// use cvopt_table::exec::ExecOptions;
/// use cvopt_table::{sql, DataType, TableBuilder, Value};
///
/// let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
/// for i in 0..500u32 {
///     b.push_row(&[Value::str(["a", "b"][(i % 2) as usize]), Value::Float64(i as f64)]).unwrap();
/// }
/// let table = b.finish();
///
/// let stmt = "SELECT g, AVG(x) FROM t GROUP BY g";
/// let sequential = sql::run_with(&table, stmt, &ExecOptions::sequential()).unwrap();
/// for threads in [2, 8] {
///     let parallel = sql::run_with(&table, stmt, &ExecOptions::new(threads)).unwrap();
///     // Bit-identical for any worker count: partials merge in partition
///     // order, so even float rounding is the same.
///     assert_eq!(parallel[0].values, sequential[0].values);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    threads: usize,
}

impl ExecOptions {
    /// Exactly `threads` worker threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ExecOptions { threads: threads.max(1) }
    }

    /// One worker per available core, unless the `CVOPT_THREADS`
    /// environment variable overrides the count (CI pins it to exercise
    /// fixed concurrency levels; results are identical either way).
    ///
    /// An unparsable, empty, or zero override is **not** silently ignored:
    /// it logs one warning per process and falls back to the core count.
    pub fn auto() -> Self {
        if let Ok(raw) = std::env::var("CVOPT_THREADS") {
            match parse_threads_override(&raw) {
                Ok(threads) => return ExecOptions::new(threads),
                Err(reason) => {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: ignoring CVOPT_THREADS={raw:?} ({reason}); \
                             falling back to one worker per available core"
                        );
                    });
                }
            }
        }
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ExecOptions { threads }
    }

    /// Single-threaded execution (same results, no thread spawns).
    pub fn sequential() -> Self {
        ExecOptions { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::auto()
    }
}

/// Validate a `CVOPT_THREADS` override value. Zero is rejected alongside
/// garbage: an explicit "no workers" request has no sensible meaning, and
/// clamping it to 1 silently would hide a misconfigured environment.
fn parse_threads_override(raw: &str) -> std::result::Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("value is empty".to_string());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("'{trimmed}' is not a positive integer")),
    }
}

/// A half-open row interval `[start, end)` processed by one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    /// First row of the partition.
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl RowRange {
    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Iterate the rows of the range.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Split `n_rows` into fixed-size partitions. Depends only on `n_rows` —
/// never on the thread count — which is what makes every driver below
/// deterministic.
pub fn partition_rows(n_rows: usize) -> Vec<RowRange> {
    if n_rows == 0 {
        return vec![RowRange { start: 0, end: 0 }];
    }
    (0..n_rows.div_ceil(CHUNK_ROWS))
        .map(|i| RowRange { start: i * CHUNK_ROWS, end: ((i + 1) * CHUNK_ROWS).min(n_rows) })
        .collect()
}

/// The scatter-gather driver: run `map` over every partition of
/// `0..n_rows` (in parallel, work-stealing over a shared queue), then hand
/// the per-partition results — **in partition order** — to `reduce`.
///
/// `map` receives `(partition_index, range)`. Fallible maps simply return
/// `Result` and let `reduce` collect.
pub fn run_partitioned<T, U, M, R>(n_rows: usize, options: &ExecOptions, map: M, reduce: R) -> U
where
    T: Send,
    M: Fn(usize, RowRange) -> T + Sync,
    R: FnOnce(Vec<T>) -> U,
{
    let partitions = partition_rows(n_rows);
    reduce(run_queue(partitions.len(), options, |i| map(i, partitions[i])))
}

/// Like [`run_partitioned`], but folds each partial into an accumulator
/// **in partition order** as partials arrive, instead of materializing all
/// of them first. Use this when a partial is heavy (a whole per-group state
/// table): peak memory is O(threads + reorder skew) partials rather than
/// O(partitions).
///
/// Returns partition 0's result folded with every later partial. The fold
/// sequence is identical for any thread count, so float accumulation
/// rounds identically.
pub fn fold_partitioned<T, M, F>(n_rows: usize, options: &ExecOptions, map: M, mut fold: F) -> T
where
    T: Send,
    M: Fn(usize, RowRange) -> T + Sync,
    F: FnMut(&mut T, T),
{
    let partitions = partition_rows(n_rows);
    let n = partitions.len();
    let threads = options.threads().min(n);
    if threads <= 1 || n <= 1 {
        let mut acc = map(0, partitions[0]);
        for (i, &range) in partitions.iter().enumerate().skip(1) {
            fold(&mut acc, map(i, range));
        }
        return acc;
    }

    let next = AtomicUsize::new(0);
    // Bounded channel: backpressure keeps at most O(threads) partials in
    // flight even when workers outpace the merging consumer, enforcing the
    // memory bound this driver exists for.
    let (sender, receiver) = std::sync::mpsc::sync_channel::<(usize, T)>(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sender = sender.clone();
            scope.spawn(|| {
                let sender = sender;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if sender.send((i, map(i, partitions[i]))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(sender);

        // Fold strictly in partition order; out-of-order arrivals wait in a
        // reorder buffer whose size is bounded by scheduling skew.
        let mut pending: std::collections::BTreeMap<usize, T> = std::collections::BTreeMap::new();
        let mut acc: Option<T> = None;
        let mut expected = 0usize;
        for (i, partial) in receiver {
            pending.insert(i, partial);
            while let Some(partial) = pending.remove(&expected) {
                match acc.as_mut() {
                    None => acc = Some(partial),
                    Some(acc) => fold(acc, partial),
                }
                expected += 1;
            }
        }
        assert_eq!(expected, n, "every partition folded exactly once");
        acc.expect("at least one partition")
    })
}

/// Merge one partial `[group][column]` state table into an accumulator of
/// the same shape, cell by cell. The shared reduce step of every
/// aggregation pass (exact group-by, statistics, weighted estimation).
pub fn merge_state_tables<S>(acc: &mut [Vec<S>], partial: Vec<Vec<S>>, merge: impl Fn(&mut S, &S)) {
    for (group, partial_group) in acc.iter_mut().zip(partial) {
        for (slot, state) in group.iter_mut().zip(partial_group) {
            merge(slot, &state);
        }
    }
}

/// Row ids grouped by bucket: `rows[offsets[b]..offsets[b + 1]]` lists
/// bucket `b`'s rows in ascending row order — exactly the layout a stable
/// counting sort over the bucket ids produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketedRows {
    /// Exclusive prefix sums of the bucket sizes (`num_buckets + 1` entries).
    pub offsets: Vec<usize>,
    /// All row ids, bucket-major, row-ascending within each bucket.
    pub rows: Vec<u32>,
}

impl BucketedRows {
    /// The rows of bucket `b`, in ascending row order.
    pub fn bucket(&self, b: usize) -> &[u32] {
        &self.rows[self.offsets[b]..self.offsets[b + 1]]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Reference implementation of [`bucket_rows`]: one sequential stable
/// counting sort over `bucket_of`. The parallel two-phase scatter is
/// defined to produce byte-identical output to this pass.
pub fn bucket_rows_sequential(bucket_of: &[u32], num_buckets: usize) -> BucketedRows {
    let mut offsets = vec![0usize; num_buckets + 1];
    for &b in bucket_of {
        offsets[b as usize + 1] += 1;
    }
    for b in 0..num_buckets {
        offsets[b + 1] += offsets[b];
    }
    let mut rows = vec![0u32; bucket_of.len()];
    let mut cursor = offsets.clone();
    for (row, &b) in bucket_of.iter().enumerate() {
        rows[cursor[b as usize]] = row as u32;
        cursor[b as usize] += 1;
    }
    BucketedRows { offsets, rows }
}

/// Shared output buffer for scatter phases. Writes go through a raw
/// pointer without synchronization; callers guarantee every index is
/// written by exactly one partition (disjointness comes from the exclusive
/// prefix offsets), so writes never alias.
struct ScatterBuffer<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the buffer hands out no references; each `write` target is owned
// by exactly one partition, so concurrent use never aliases.
unsafe impl<T: Send> Sync for ScatterBuffer<T> {}

impl<T> ScatterBuffer<T> {
    fn new(data: &mut [T]) -> Self {
        ScatterBuffer { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// # Safety
    /// `i < len`, and no other thread writes index `i`.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(value) };
    }
}

/// Bucket row ids by a per-row bucket id with a two-phase parallel
/// scatter: phase 1 computes per-partition × per-bucket histograms on
/// [`run_partitioned`], phase 2 takes an exclusive prefix over
/// `(bucket, partition)` — bucket-major, partition-minor — so every
/// partition owns a disjoint write window per bucket, and phase 3 scatters
/// rows in parallel into a pre-sized buffer.
///
/// Because partitions are fixed by the row count and the prefix order is
/// bucket-major then partition order (= global row order within a bucket),
/// the output is **byte-identical to [`bucket_rows_sequential`]** for any
/// thread count.
pub fn bucket_rows(bucket_of: &[u32], num_buckets: usize, options: &ExecOptions) -> BucketedRows {
    let n = bucket_of.len();
    let partitions = partition_rows(n);
    // The phase-2 prefix tables cost O(partitions × buckets) memory and
    // sequential time. For very fine stratifications that planning pass
    // dwarfs the O(n) scatter it schedules, so fall back to the counting
    // sort (O(n + buckets)). The cutoff depends only on the input shape —
    // never the thread count — and both paths produce identical output,
    // so determinism is unaffected.
    let oversized_prefix = partitions.len().saturating_mul(num_buckets) > n;
    if options.threads() <= 1 || partitions.len() <= 1 || oversized_prefix {
        return bucket_rows_sequential(bucket_of, num_buckets);
    }

    // Phase 1: per-partition histograms, in partition order.
    let histograms: Vec<Vec<u32>> = run_partitioned(
        n,
        options,
        |_, range| {
            let mut hist = vec![0u32; num_buckets];
            for &b in &bucket_of[range.start..range.end] {
                hist[b as usize] += 1;
            }
            hist
        },
        |parts| parts,
    );

    // Phase 2: exclusive prefix over (bucket, partition). `starts[p][b]` is
    // the first output slot of partition `p`'s rows for bucket `b`.
    let mut offsets = vec![0usize; num_buckets + 1];
    for hist in &histograms {
        for (b, &count) in hist.iter().enumerate() {
            offsets[b + 1] += count as usize;
        }
    }
    for b in 0..num_buckets {
        offsets[b + 1] += offsets[b];
    }
    let mut starts = vec![0u32; histograms.len() * num_buckets];
    let mut cursor: Vec<u32> = offsets[..num_buckets].iter().map(|&o| o as u32).collect();
    for (p, hist) in histograms.iter().enumerate() {
        for (b, &count) in hist.iter().enumerate() {
            starts[p * num_buckets + b] = cursor[b];
            cursor[b] += count;
        }
    }

    // Phase 3: parallel scatter into disjoint windows.
    let mut rows = vec![0u32; n];
    let out = ScatterBuffer::new(&mut rows);
    run_partitioned(
        n,
        options,
        |p, range| {
            let mut cursor = starts[p * num_buckets..(p + 1) * num_buckets].to_vec();
            for row in range.rows() {
                let b = bucket_of[row] as usize;
                // SAFETY: `cursor[b]` walks partition `p`'s disjoint
                // window for bucket `b`; no other partition writes it.
                unsafe { out.write(cursor[b] as usize, row as u32) };
                cursor[b] += 1;
            }
        },
        |_: Vec<()>| (),
    );
    BucketedRows { offsets, rows }
}

/// [`bucket_rows`] lifted one level: bucket rows that live in per-shard
/// slices (shard 0's bucket ids, then shard 1's, …) into **global** row ids
/// (shard base + local row), without materializing the concatenated id
/// vector.
///
/// The scatter gains a per-shard histogram level above the per-partition
/// one: phase 1 computes a histogram per (shard, partition) work item —
/// shard-major, partition-minor, each shard partitioned by its own row
/// count — phase 2 takes the exclusive prefix over
/// `(bucket, shard, partition)`, and phase 3 scatters every work item into
/// its disjoint window. Because the prefix order within a bucket is shard
/// order then partition order — i.e. global row order — the output is
/// **byte-identical to [`bucket_rows_sequential`] over the concatenation**
/// for any shard layout (uneven and empty shards included) and any thread
/// count. A future remote shard only ships its histograms and its scatter
/// window; nothing here needs shared row storage.
pub fn bucket_rows_sharded(
    shards: &[&[u32]],
    num_buckets: usize,
    options: &ExecOptions,
) -> BucketedRows {
    let mut bases = Vec::with_capacity(shards.len());
    let mut total = 0usize;
    for shard in shards {
        bases.push(total);
        total += shard.len();
    }

    // Work items in (shard, partition) order; empty shards contribute none.
    let items: Vec<(usize, RowRange)> = shards
        .iter()
        .enumerate()
        .filter(|(_, shard)| !shard.is_empty())
        .flat_map(|(s, shard)| partition_rows(shard.len()).into_iter().map(move |r| (s, r)))
        .collect();

    // Same planning-cost cutoff as `bucket_rows`: input shape only, so the
    // path choice never depends on the thread count.
    let oversized_prefix = items.len().saturating_mul(num_buckets) > total;
    if options.threads() <= 1 || items.len() <= 1 || oversized_prefix {
        // Sequential stable counting sort over the logical concatenation.
        let mut offsets = vec![0usize; num_buckets + 1];
        for shard in shards {
            for &b in *shard {
                offsets[b as usize + 1] += 1;
            }
        }
        for b in 0..num_buckets {
            offsets[b + 1] += offsets[b];
        }
        let mut rows = vec![0u32; total];
        let mut cursor = offsets.clone();
        for (s, shard) in shards.iter().enumerate() {
            for (local, &b) in shard.iter().enumerate() {
                rows[cursor[b as usize]] = (bases[s] + local) as u32;
                cursor[b as usize] += 1;
            }
        }
        return BucketedRows { offsets, rows };
    }

    // Phase 1: one histogram per (shard, partition) item.
    let histograms: Vec<Vec<u32>> = run_queue(items.len(), options, |i| {
        let (s, range) = items[i];
        let mut hist = vec![0u32; num_buckets];
        for &b in &shards[s][range.start..range.end] {
            hist[b as usize] += 1;
        }
        hist
    });

    // Phase 2: exclusive prefix over (bucket, shard, partition).
    let mut offsets = vec![0usize; num_buckets + 1];
    for hist in &histograms {
        for (b, &count) in hist.iter().enumerate() {
            offsets[b + 1] += count as usize;
        }
    }
    for b in 0..num_buckets {
        offsets[b + 1] += offsets[b];
    }
    let mut starts = vec![0u32; histograms.len() * num_buckets];
    let mut cursor: Vec<u32> = offsets[..num_buckets].iter().map(|&o| o as u32).collect();
    for (i, hist) in histograms.iter().enumerate() {
        for (b, &count) in hist.iter().enumerate() {
            starts[i * num_buckets + b] = cursor[b];
            cursor[b] += count;
        }
    }

    // Phase 3: parallel scatter of global row ids into disjoint windows.
    let mut rows = vec![0u32; total];
    let out = ScatterBuffer::new(&mut rows);
    run_queue(items.len(), options, |i| {
        let (s, range) = items[i];
        let mut cursor = starts[i * num_buckets..(i + 1) * num_buckets].to_vec();
        for local in range.rows() {
            let b = shards[s][local] as usize;
            // SAFETY: `cursor[b]` walks item `i`'s disjoint window for
            // bucket `b`; no other item writes it.
            unsafe { out.write(cursor[b] as usize, (bases[s] + local) as u32) };
            cursor[b] += 1;
        }
    });
    BucketedRows { offsets, rows }
}

/// Run `work` for every index in `0..n_items` with dynamic scheduling and
/// return the results in index order. This is the driver for *item*-grained
/// parallelism (one stratum, one dimension, one query) where per-item cost
/// is uneven; determinism holds because each item's result depends only on
/// its index.
pub fn run_indexed<T, W>(n_items: usize, options: &ExecOptions, work: W) -> Vec<T>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    run_queue(n_items, options, work)
}

/// Shared work-queue executor: `work(i)` for `i in 0..n_items`, results in
/// index order.
fn run_queue<T, W>(n_items: usize, options: &ExecOptions, work: W) -> Vec<T>
where
    T: Send,
    W: Fn(usize) -> T + Sync,
{
    let threads = options.threads().min(n_items.max(1));
    if threads <= 1 || n_items <= 1 {
        return (0..n_items).map(work).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_items);
    slots.resize_with(n_items, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut produced: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_items {
                        break;
                    }
                    produced.push((i, work(i)));
                }
                produced
            }));
        }
        for handle in handles {
            for (i, value) in handle.join().expect("exec worker panicked") {
                slots[i] = Some(value);
            }
        }
    });

    slots.into_iter().map(|s| s.expect("every work item produced a result")).collect()
}

/// Mutate `data` in parallel, split into `chunk`-element blocks: `f` is
/// called with `(block_index, block)` for each disjoint block. Blocks are
/// distributed round-robin over the workers; because each block is touched
/// by exactly one closure invocation, no synchronization is needed.
///
/// Used for scatter phases — remapping per-row codes, filling bitmap words
/// — where each output element belongs to exactly one partition.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, options: &ExecOptions, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_blocks = data.len().div_ceil(chunk);
    let threads = options.threads().min(n_blocks.max(1));
    if threads <= 1 || n_blocks <= 1 {
        for (i, block) in data.chunks_mut(chunk).enumerate() {
            f(i, block);
        }
        return;
    }

    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = Vec::new();
    per_worker.resize_with(threads, Vec::new);
    for (i, block) in data.chunks_mut(chunk).enumerate() {
        per_worker[i % threads].push((i, block));
    }
    std::thread::scope(|scope| {
        for assigned in per_worker {
            scope.spawn(|| {
                for (i, block) in assigned {
                    f(i, block);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random bucket assignment for scatter tests.
    fn assignment(n: usize, num_buckets: usize, seed: u64) -> Vec<u32> {
        let mut state = seed;
        (0..n)
            .map(|row| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(row as u64 | 1)
                    .rotate_left(17);
                (state % num_buckets as u64) as u32
            })
            .collect()
    }

    #[test]
    fn bucket_rows_matches_sequential_at_boundary_sizes() {
        // 0, 1, and non-multiples of the partition size: the sizes where
        // an off-by-one in the prefix/scatter would show.
        for n in [0usize, 1, 63, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, 2 * CHUNK_ROWS + 123] {
            let buckets = assignment(n, 7, 0xC0FFEE);
            let reference = bucket_rows_sequential(&buckets, 7);
            for threads in [1usize, 2, 8] {
                let par = bucket_rows(&buckets, 7, &ExecOptions::new(threads));
                assert_eq!(par, reference, "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn bucket_rows_is_stable_by_row_order() {
        let buckets = assignment(3 * CHUNK_ROWS + 17, 5, 42);
        let out = bucket_rows(&buckets, 5, &ExecOptions::new(4));
        assert_eq!(out.num_buckets(), 5);
        let mut seen = 0usize;
        for b in 0..5 {
            let rows = out.bucket(b);
            seen += rows.len();
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "bucket {b} not in row order");
            assert!(rows.iter().all(|&r| buckets[r as usize] as usize == b));
        }
        assert_eq!(seen, buckets.len());
    }

    #[test]
    fn bucket_rows_empty_buckets_allowed() {
        // Buckets with zero rows (including trailing ones) keep their
        // offsets well-formed.
        let buckets = vec![2u32; 10];
        let out = bucket_rows(&buckets, 6, &ExecOptions::new(4));
        assert_eq!(out.offsets, vec![0, 0, 0, 10, 10, 10, 10]);
        assert!(out.bucket(0).is_empty());
        assert_eq!(out.bucket(2).len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The two-phase scatter equals the sequential counting sort for
        /// random assignments spanning multiple partitions.
        #[test]
        fn bucket_rows_matches_sequential_on_random_assignments(
            seed in any::<u64>(),
            num_buckets in 1usize..40,
            extra in 0usize..300,
        ) {
            let n = CHUNK_ROWS + extra;
            let buckets = assignment(n, num_buckets, seed);
            let reference = bucket_rows_sequential(&buckets, num_buckets);
            for threads in [2usize, 8] {
                let par = bucket_rows(&buckets, num_buckets, &ExecOptions::new(threads));
                prop_assert_eq!(&par, &reference, "threads = {}", threads);
            }
        }
    }

    /// Slice `assignment` output into shard slices of the given sizes.
    fn shard_slices<'a>(all: &'a [u32], sizes: &[usize]) -> Vec<&'a [u32]> {
        let mut out = Vec::new();
        let mut start = 0;
        for &len in sizes {
            out.push(&all[start..start + len]);
            start += len;
        }
        assert_eq!(start, all.len(), "shard sizes must cover the input");
        out
    }

    #[test]
    fn sharded_bucket_rows_matches_concatenated_sequential() {
        let n = 2 * CHUNK_ROWS + 777;
        let buckets = assignment(n, 9, 0xBEEF);
        let reference = bucket_rows_sequential(&buckets, 9);
        // Uneven shards, empty shards (leading, middle, trailing), a
        // single shard, and shard boundaries that are not partition
        // multiples.
        let layouts: Vec<Vec<usize>> = vec![
            vec![n],
            vec![0, n, 0],
            vec![CHUNK_ROWS, CHUNK_ROWS, 777],
            vec![123, 0, CHUNK_ROWS + 1, n - CHUNK_ROWS - 124],
        ];
        for sizes in layouts {
            let shards = shard_slices(&buckets, &sizes);
            for threads in [1usize, 2, 8] {
                let got = bucket_rows_sharded(&shards, 9, &ExecOptions::new(threads));
                assert_eq!(got, reference, "sizes = {sizes:?}, threads = {threads}");
            }
        }
    }

    #[test]
    fn sharded_bucket_rows_empty_input() {
        let got = bucket_rows_sharded(&[&[][..], &[][..]], 4, &ExecOptions::new(4));
        assert_eq!(got.offsets, vec![0; 5]);
        assert!(got.rows.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The sharded scatter equals the concatenated counting sort for
        /// random shard layouts (including empty shards) and bucket counts.
        #[test]
        fn sharded_bucket_rows_matches_sequential_on_random_layouts(
            seed in any::<u64>(),
            num_buckets in 1usize..20,
            sizes in proptest::collection::vec(0usize..(CHUNK_ROWS / 8), 1..6),
        ) {
            let n: usize = sizes.iter().sum();
            let buckets = assignment(n, num_buckets, seed);
            let reference = bucket_rows_sequential(&buckets, num_buckets);
            let shards = shard_slices(&buckets, &sizes);
            for threads in [1usize, 4] {
                let got = bucket_rows_sharded(&shards, num_buckets, &ExecOptions::new(threads));
                prop_assert_eq!(&got, &reference, "threads = {}", threads);
            }
        }
    }

    #[test]
    fn threads_override_accepts_positive_integers() {
        assert_eq!(parse_threads_override("1"), Ok(1));
        assert_eq!(parse_threads_override("8"), Ok(8));
        assert_eq!(parse_threads_override(" 4 "), Ok(4), "whitespace is trimmed");
    }

    #[test]
    fn threads_override_rejects_zero() {
        let err = parse_threads_override("0").unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn threads_override_rejects_garbage() {
        let err = parse_threads_override("abc").unwrap_err();
        assert!(err.contains("abc"), "{err}");
        assert!(parse_threads_override("-3").is_err());
        assert!(parse_threads_override("1.5").is_err());
    }

    #[test]
    fn threads_override_rejects_empty() {
        let err = parse_threads_override("").unwrap_err();
        assert!(err.contains("empty"), "{err}");
        assert!(parse_threads_override("   ").is_err());
    }

    #[test]
    fn partitions_cover_exactly() {
        for n in [0usize, 1, 63, 64, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, 1_000_000] {
            let parts = partition_rows(n);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, n);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                // All boundaries are word-aligned for bitmap writers.
                assert_eq!(w[0].end % 64, 0);
            }
            let total: usize = parts.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn reduce_sees_partition_order() {
        let n = 3 * CHUNK_ROWS + 17;
        for threads in [1, 2, 8] {
            let options = ExecOptions::new(threads);
            let order = run_partitioned(n, &options, |i, r| (i, r.start), |parts| parts);
            let expected: Vec<(usize, usize)> = (0..4).map(|i| (i, i * CHUNK_ROWS)).collect();
            assert_eq!(order, expected, "threads = {threads}");
        }
    }

    #[test]
    fn partitioned_sum_is_thread_count_independent() {
        // Non-associative float accumulation: the canonical case where
        // naive parallel reduction varies with the thread count.
        let n = 2 * CHUNK_ROWS + 999;
        let value = |row: usize| 1.0f64 / (1.0 + row as f64);
        let sum_with = |threads: usize| {
            run_partitioned(
                n,
                &ExecOptions::new(threads),
                |_, r| r.rows().map(value).sum::<f64>(),
                |parts| parts.into_iter().fold(0.0f64, |a, b| a + b),
            )
        };
        let reference = sum_with(1);
        for threads in [2, 3, 8, 64] {
            let got = sum_with(threads);
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn fold_matches_run_for_any_thread_count() {
        let n = 5 * CHUNK_ROWS + 321;
        let value = |row: usize| 1.0f64 / (1.0 + row as f64);
        let via_run = run_partitioned(
            n,
            &ExecOptions::sequential(),
            |_, r| r.rows().map(value).sum::<f64>(),
            |parts| parts.into_iter().fold(0.0f64, |a, b| a + b),
        );
        for threads in [1usize, 2, 3, 8] {
            let via_fold = fold_partitioned(
                n,
                &ExecOptions::new(threads),
                |_, r| r.rows().map(value).sum::<f64>(),
                |acc, part| *acc += part,
            );
            assert_eq!(via_fold.to_bits(), via_run.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn fold_applies_in_partition_order() {
        let n = 4 * CHUNK_ROWS;
        for threads in [1usize, 2, 8] {
            let order = fold_partitioned(
                n,
                &ExecOptions::new(threads),
                |i, _| vec![i],
                |acc, part| acc.extend(part),
            );
            assert_eq!(order, vec![0, 1, 2, 3], "threads = {threads}");
        }
    }

    #[test]
    fn merge_state_tables_shapes() {
        let mut acc = vec![vec![1u64, 2], vec![3, 4]];
        merge_state_tables(&mut acc, vec![vec![10, 20], vec![30, 40]], |a, b| *a += *b);
        assert_eq!(acc, vec![vec![11, 22], vec![33, 44]]);
    }

    #[test]
    fn run_indexed_orders_results() {
        for threads in [1, 4] {
            let got = run_indexed(100, &ExecOptions::new(threads), |i| i * i);
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn run_indexed_empty() {
        let got: Vec<u32> = run_indexed(0, &ExecOptions::new(4), |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn chunked_mut_touches_every_element_once() {
        for threads in [1, 3, 8] {
            let mut data = vec![0u32; 10 * 1000 + 123];
            for_each_chunk_mut(&mut data, 1000, &ExecOptions::new(threads), |i, block| {
                for (j, v) in block.iter_mut().enumerate() {
                    *v += (i * 1000 + j) as u32 + 1;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
        }
    }

    #[test]
    fn zero_rows_single_empty_partition() {
        let parts = partition_rows(0);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
        let out = run_partitioned(0, &ExecOptions::auto(), |_, r| r.len(), |p| p);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn options_clamp_and_default() {
        assert_eq!(ExecOptions::new(0).threads(), 1);
        assert_eq!(ExecOptions::sequential().threads(), 1);
        assert!(ExecOptions::default().threads() >= 1);
    }

    #[test]
    fn errors_propagate_through_reduce() {
        let result: Result<Vec<usize>, String> = run_partitioned(
            3 * CHUNK_ROWS,
            &ExecOptions::new(2),
            |i, r| if i == 1 { Err(format!("partition {i}")) } else { Ok(r.len()) },
            |parts| parts.into_iter().collect(),
        );
        assert_eq!(result.unwrap_err(), "partition 1");
    }
}

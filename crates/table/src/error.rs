//! Error types for the table engine.

use std::fmt;

use crate::types::DataType;

/// Errors produced by the table engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// A referenced column does not exist in the schema.
    ColumnNotFound(String),
    /// A value had the wrong type for the column it was pushed into or
    /// compared against.
    TypeMismatch {
        /// What the operation expected.
        expected: DataType,
        /// What it got instead.
        found: String,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// An operation required a numeric column but the column is not numeric.
    NotNumeric(String),
    /// A scalar function was applied to an incompatible input
    /// (e.g. `YEAR` over a string column).
    InvalidFunctionInput {
        /// Function name.
        function: &'static str,
        /// Human-readable description of the offending input.
        input: String,
    },
    /// SQL tokenizer/parser error with byte position.
    Sql {
        /// Error message.
        message: String,
        /// Byte offset in the input statement, if known.
        position: Option<usize>,
    },
    /// CSV parse error.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Error message.
        message: String,
    },
    /// Any other invariant violation, with a description.
    Invalid(String),
}

impl TableError {
    /// Convenience constructor for SQL errors.
    pub fn sql(message: impl Into<String>, position: Option<usize>) -> Self {
        TableError::Sql { message: message.into(), position }
    }

    /// Convenience constructor for generic invariant errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        TableError::Invalid(message.into())
    }
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            TableError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            TableError::ArityMismatch { expected, found } => {
                write!(f, "row arity mismatch: schema has {expected} columns, row has {found}")
            }
            TableError::NotNumeric(name) => write!(f, "column is not numeric: {name}"),
            TableError::InvalidFunctionInput { function, input } => {
                write!(f, "invalid input for {function}: {input}")
            }
            TableError::Sql { message, position } => match position {
                Some(pos) => write!(f, "SQL error at byte {pos}: {message}"),
                None => write!(f, "SQL error: {message}"),
            },
            TableError::Csv { line, message } => write!(f, "CSV error on line {line}: {message}"),
            TableError::Invalid(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = TableError::ColumnNotFound("gpa".into());
        assert_eq!(e.to_string(), "column not found: gpa");
    }

    #[test]
    fn display_sql_with_position() {
        let e = TableError::sql("unexpected token", Some(7));
        assert_eq!(e.to_string(), "SQL error at byte 7: unexpected token");
    }

    #[test]
    fn display_sql_without_position() {
        let e = TableError::sql("empty statement", None);
        assert_eq!(e.to_string(), "SQL error: empty statement");
    }

    #[test]
    fn display_arity() {
        let e = TableError::ArityMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains("schema has 3"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TableError::NotNumeric("major".into()));
        assert!(e.to_string().contains("not numeric"));
    }
}

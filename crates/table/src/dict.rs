//! String dictionary for dictionary-encoded columns.

use std::sync::Arc;

use crate::fxhash::FxHashMap;

/// An append-only interner mapping strings to dense `u32` codes.
///
/// Codes are assigned in first-seen order, starting at 0; the dictionary of a
/// column therefore doubles as the set of *distinct values* of that column,
/// which the grouping machinery exploits: the codes of a string column are
/// already dense group codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    index: FxHashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// New empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        let owned: Arc<str> = Arc::from(s);
        self.values.push(Arc::clone(&owned));
        self.index.insert(owned, code);
        code
    }

    /// Look up the code of `s` without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`. Panics if the code was never assigned.
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// The string for `code` as a cheap `Arc` clone.
    pub fn get_arc(&self, code: u32) -> Arc<str> {
        Arc::clone(&self.values[code as usize])
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values.iter().enumerate().map(|(i, s)| (i as u32, s.as_ref()))
    }

    /// Approximate heap footprint in bytes, as a **pure function of the
    /// data** (string bytes plus a fixed per-entry overhead), so the value
    /// is identical on every platform — cache-economy counters built on it
    /// can be snapshotted and diffed across machines.
    pub fn approx_bytes(&self) -> u64 {
        /// Per-entry bookkeeping charge (code slot + index entry).
        const ENTRY_OVERHEAD: u64 = 16;
        self.values.iter().map(|s| s.len() as u64 + ENTRY_OVERHEAD).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("US"), 0);
        assert_eq!(d.intern("VN"), 1);
        assert_eq!(d.intern("US"), 0);
        assert_eq!(d.intern("IN"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn get_round_trips() {
        let mut d = Dictionary::new();
        let code = d.intern("pm25");
        assert_eq!(d.get(code), "pm25");
        assert_eq!(&*d.get_arc(code), "pm25");
    }

    #[test]
    fn code_of_missing() {
        let mut d = Dictionary::new();
        d.intern("a");
        assert_eq!(d.code_of("a"), Some(0));
        assert_eq!(d.code_of("b"), None);
    }

    #[test]
    fn iter_in_code_order() {
        let mut d = Dictionary::new();
        for s in ["c", "a", "b"] {
            d.intern(s);
        }
        let collected: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(collected, vec![(0, "c"), (1, "a"), (2, "b")]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.code_of("x"), None);
    }

    #[test]
    fn many_strings() {
        let mut d = Dictionary::new();
        for i in 0..10_000 {
            let s = format!("key-{i}");
            assert_eq!(d.intern(&s), i as u32);
        }
        assert_eq!(d.get(9_999), "key-9999");
    }
}

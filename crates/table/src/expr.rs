//! Scalar expressions: column references, calendar functions, arithmetic,
//! and `CASE`.

use std::fmt;

use crate::column::Column;
use crate::error::TableError;
use crate::predicate::CmpOp;
use crate::table::Table;
use crate::time;
use crate::types::{DataType, Value};
use crate::Result;

/// Arithmetic operators for [`ScalarExpr::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// One `WHEN lhs OP rhs THEN then` arm of a [`ScalarExpr::Case`].
/// Conditions are numeric comparisons; an arm whose condition can't be
/// evaluated at a row (missing value) simply doesn't match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseWhen {
    /// Left side of the arm's comparison.
    pub lhs: ScalarExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right side of the arm's comparison.
    pub rhs: ScalarExpr,
    /// Value of the expression when this arm matches first.
    pub then: ScalarExpr,
}

/// A scalar expression evaluated per row.
///
/// Expressions cover column references, the calendar extractors the
/// paper's queries need (`YEAR`, `MONTH`, `HOUR` over epoch-second
/// timestamps), 0/1 indicator expressions (`IND(col > t)`, which let the
/// sampling framework treat `COUNT_IF` aggregates as ordinary value
/// columns), numeric literals, the four arithmetic operators, and
/// `CASE WHEN` over numeric comparisons. Literal and threshold floats are
/// stored as IEEE-754 bits so the type stays `Eq`/hashable (expression
/// display names feed sample fingerprints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarExpr {
    /// A column referenced by name.
    Column(String),
    /// A numeric literal (`f64::to_bits` of the value).
    Literal(u64),
    /// `YEAR(expr)` — calendar year of a timestamp expression.
    Year(Box<ScalarExpr>),
    /// `MONTH(expr)` — month (1–12) of a timestamp expression.
    Month(Box<ScalarExpr>),
    /// `DAY(expr)` — day of month (1–31) of a timestamp expression.
    Day(Box<ScalarExpr>),
    /// `HOUR(expr)` — hour of day (0–23) of a timestamp expression.
    Hour(Box<ScalarExpr>),
    /// `IND(col OP t)` — 1 if the comparison holds, else 0. The threshold is
    /// stored as IEEE-754 bits so the type stays `Eq`/hashable.
    Indicator {
        /// Compared column (a plain column reference).
        input: Box<ScalarExpr>,
        /// Comparison operator.
        op: CmpOp,
        /// `f64::to_bits` of the threshold.
        threshold_bits: u64,
    },
    /// `left OP right` arithmetic over numeric expressions.
    Binary {
        /// Arithmetic operator.
        op: ArithOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// `CASE WHEN … THEN … [ELSE …] END`. Arms match in order; with no
    /// matching arm and no `ELSE`, the expression has no value at the row
    /// (the row is skipped by aggregates and fails predicates, like SQL
    /// `NULL`).
    Case {
        /// `WHEN` arms, tried in order.
        whens: Vec<CaseWhen>,
        /// `ELSE` value, if present.
        otherwise: Option<Box<ScalarExpr>>,
    },
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Column(name.into())
    }

    /// Shorthand for a numeric literal.
    pub fn lit(value: f64) -> Self {
        ScalarExpr::Literal(value.to_bits())
    }

    /// `left OP right` shorthand.
    pub fn binary(op: ArithOp, left: ScalarExpr, right: ScalarExpr) -> Self {
        ScalarExpr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `YEAR(col)` shorthand.
    pub fn year(name: impl Into<String>) -> Self {
        ScalarExpr::Year(Box::new(ScalarExpr::col(name)))
    }

    /// `MONTH(col)` shorthand.
    pub fn month(name: impl Into<String>) -> Self {
        ScalarExpr::Month(Box::new(ScalarExpr::col(name)))
    }

    /// `HOUR(col)` shorthand.
    pub fn hour(name: impl Into<String>) -> Self {
        ScalarExpr::Hour(Box::new(ScalarExpr::col(name)))
    }

    /// `IND(col OP threshold)` shorthand: a 0/1 indicator column.
    pub fn indicator(name: impl Into<String>, op: CmpOp, threshold: f64) -> Self {
        ScalarExpr::Indicator {
            input: Box::new(ScalarExpr::col(name)),
            op,
            threshold_bits: threshold.to_bits(),
        }
    }

    /// A short display name, used for result column labels (and, through
    /// them, sample fingerprints — two expressions with equal display
    /// names are treated as the same).
    pub fn display_name(&self) -> String {
        match self {
            ScalarExpr::Column(name) => name.clone(),
            ScalarExpr::Literal(bits) => format!("{}", f64::from_bits(*bits)),
            ScalarExpr::Year(inner) => format!("YEAR({})", inner.display_name()),
            ScalarExpr::Month(inner) => format!("MONTH({})", inner.display_name()),
            ScalarExpr::Day(inner) => format!("DAY({})", inner.display_name()),
            ScalarExpr::Hour(inner) => format!("HOUR({})", inner.display_name()),
            ScalarExpr::Indicator { input, op, threshold_bits } => {
                format!("IND({} {} {})", input.display_name(), op, f64::from_bits(*threshold_bits))
            }
            ScalarExpr::Binary { op, left, right } => {
                format!("({} {} {})", left.display_name(), op, right.display_name())
            }
            ScalarExpr::Case { whens, otherwise } => {
                let mut s = String::from("CASE");
                for w in whens {
                    s.push_str(&format!(
                        " WHEN {} {} {} THEN {}",
                        w.lhs.display_name(),
                        w.op,
                        w.rhs.display_name(),
                        w.then.display_name()
                    ));
                }
                if let Some(e) = otherwise {
                    s.push_str(&format!(" ELSE {}", e.display_name()));
                }
                s.push_str(" END");
                s
            }
        }
    }

    /// Bind this expression against a table, producing an evaluator that can
    /// be applied per row without further name resolution.
    pub fn bind<'t>(&self, table: &'t Table) -> Result<BoundExpr<'t>> {
        match self {
            ScalarExpr::Column(name) => {
                let column = table.column_by_name(name)?;
                Ok(BoundExpr { kind: BoundKind::Leaf { column, func: TimeFunc::Identity } })
            }
            ScalarExpr::Literal(bits) => {
                Ok(BoundExpr { kind: BoundKind::Literal(f64::from_bits(*bits)) })
            }
            ScalarExpr::Year(inner) => Self::bind_time(inner, table, TimeFunc::Year, "YEAR"),
            ScalarExpr::Month(inner) => Self::bind_time(inner, table, TimeFunc::Month, "MONTH"),
            ScalarExpr::Day(inner) => Self::bind_time(inner, table, TimeFunc::Day, "DAY"),
            ScalarExpr::Hour(inner) => Self::bind_time(inner, table, TimeFunc::Hour, "HOUR"),
            ScalarExpr::Indicator { input, op, threshold_bits } => {
                let ScalarExpr::Column(col_name) = input.as_ref() else {
                    return Err(TableError::InvalidFunctionInput {
                        function: "IND",
                        input: "nested expressions are not supported".into(),
                    });
                };
                let column = table.column_by_name(col_name)?;
                if !column.data_type().is_numeric() {
                    return Err(TableError::InvalidFunctionInput {
                        function: "IND",
                        input: format!("column {col_name} has type {}", column.data_type()),
                    });
                }
                Ok(BoundExpr {
                    kind: BoundKind::Leaf {
                        column,
                        func: TimeFunc::Indicator {
                            op: *op,
                            threshold: f64::from_bits(*threshold_bits),
                        },
                    },
                })
            }
            ScalarExpr::Binary { op, left, right } => {
                let left = Self::bind_numeric(left, table, "arithmetic")?;
                let right = Self::bind_numeric(right, table, "arithmetic")?;
                Ok(BoundExpr {
                    kind: BoundKind::Binary {
                        op: *op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                })
            }
            ScalarExpr::Case { whens, otherwise } => {
                let whens = whens
                    .iter()
                    .map(|w| {
                        Ok(BoundWhen {
                            lhs: Self::bind_numeric(&w.lhs, table, "CASE")?,
                            op: w.op,
                            rhs: Self::bind_numeric(&w.rhs, table, "CASE")?,
                            then: Self::bind_numeric(&w.then, table, "CASE")?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let otherwise = otherwise
                    .as_ref()
                    .map(|e| Self::bind_numeric(e, table, "CASE").map(Box::new))
                    .transpose()?;
                Ok(BoundExpr { kind: BoundKind::Case { whens, otherwise } })
            }
        }
    }

    /// Bind a sub-expression that must be numeric (arithmetic operands,
    /// `CASE` conditions and branches): a string column here is a type
    /// error at bind time, not a silent `NULL` at evaluation time.
    fn bind_numeric<'t>(
        expr: &ScalarExpr,
        table: &'t Table,
        function: &'static str,
    ) -> Result<BoundExpr<'t>> {
        let bound = expr.bind(table)?;
        if bound.is_plain_str() {
            return Err(TableError::InvalidFunctionInput {
                function,
                input: format!("{} is a string column", expr.display_name()),
            });
        }
        Ok(bound)
    }

    fn bind_time<'t>(
        inner: &ScalarExpr,
        table: &'t Table,
        func: TimeFunc,
        name: &'static str,
    ) -> Result<BoundExpr<'t>> {
        let ScalarExpr::Column(col_name) = inner else {
            return Err(TableError::InvalidFunctionInput {
                function: name,
                input: "nested expressions are not supported".into(),
            });
        };
        let column = table.column_by_name(col_name)?;
        if !matches!(column.data_type(), DataType::Timestamp | DataType::Int64) {
            return Err(TableError::InvalidFunctionInput {
                function: name,
                input: format!("column {col_name} has type {}", column.data_type()),
            });
        }
        Ok(BoundExpr { kind: BoundKind::Leaf { column, func } })
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_name())
    }
}

#[derive(Debug, Clone, Copy)]
enum TimeFunc {
    Identity,
    Year,
    Month,
    Day,
    Hour,
    Indicator { op: CmpOp, threshold: f64 },
}

#[derive(Debug, Clone)]
struct BoundWhen<'t> {
    lhs: BoundExpr<'t>,
    op: CmpOp,
    rhs: BoundExpr<'t>,
    then: BoundExpr<'t>,
}

#[derive(Debug, Clone)]
enum BoundKind<'t> {
    Leaf { column: &'t Column, func: TimeFunc },
    Literal(f64),
    Binary { op: ArithOp, left: Box<BoundExpr<'t>>, right: Box<BoundExpr<'t>> },
    Case { whens: Vec<BoundWhen<'t>>, otherwise: Option<Box<BoundExpr<'t>>> },
}

/// A [`ScalarExpr`] bound to a concrete table.
///
/// Evaluation is total and never panics: division by zero, integer
/// overflow, and a `CASE` with no matching arm all evaluate to "no value"
/// (`None`), which predicates treat as false and aggregates skip.
#[derive(Debug, Clone)]
pub struct BoundExpr<'t> {
    kind: BoundKind<'t>,
}

impl BoundExpr<'_> {
    /// Evaluate at `row` as a dynamic [`Value`]. Computed expressions
    /// (arithmetic, `CASE`) evaluate as floats; a row where they have no
    /// value yields `Float64(NaN)`.
    pub fn value_at(&self, row: usize) -> Value {
        match &self.kind {
            BoundKind::Leaf { column, func } => match func {
                TimeFunc::Identity => column.value(row),
                TimeFunc::Year => Value::Int64(time::year_of(self.raw(row))),
                TimeFunc::Month => Value::Int64(time::month_of(self.raw(row))),
                TimeFunc::Day => Value::Int64(time::day_of(self.raw(row))),
                TimeFunc::Hour => Value::Int64(time::hour_of(self.raw(row))),
                TimeFunc::Indicator { .. } => {
                    Value::Int64(self.i64_at(row).expect("indicator over numeric column"))
                }
            },
            _ => Value::Float64(self.f64_at(row).unwrap_or(f64::NAN)),
        }
    }

    /// Evaluate at `row` as a float, if the expression has a numeric value
    /// there.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match &self.kind {
            BoundKind::Leaf { column, func } => match *func {
                TimeFunc::Identity => column.f64_at(row),
                TimeFunc::Year => Some(time::year_of(self.raw(row)) as f64),
                TimeFunc::Month => Some(time::month_of(self.raw(row)) as f64),
                TimeFunc::Day => Some(time::day_of(self.raw(row)) as f64),
                TimeFunc::Hour => Some(time::hour_of(self.raw(row)) as f64),
                TimeFunc::Indicator { op, threshold } => {
                    let v = column.f64_at(row)?;
                    Some(if op.evaluate_f64(v, threshold) { 1.0 } else { 0.0 })
                }
            },
            BoundKind::Literal(v) => Some(*v),
            BoundKind::Binary { op, left, right } => {
                let l = left.f64_at(row)?;
                let r = right.f64_at(row)?;
                match op {
                    ArithOp::Add => Some(l + r),
                    ArithOp::Sub => Some(l - r),
                    ArithOp::Mul => Some(l * r),
                    // Division by zero has no value, rather than ±inf/NaN
                    // leaking into group keys and accumulators.
                    ArithOp::Div => (r != 0.0).then(|| l / r),
                }
            }
            BoundKind::Case { whens, otherwise } => {
                for w in whens {
                    if let (Some(l), Some(r)) = (w.lhs.f64_at(row), w.rhs.f64_at(row)) {
                        if w.op.evaluate_f64(l, r) {
                            return w.then.f64_at(row);
                        }
                    }
                }
                otherwise.as_ref().and_then(|e| e.f64_at(row))
            }
        }
    }

    /// Evaluate at `row` as an integer, if the expression is integer-like
    /// there. Arithmetic is checked (`+ - *` over integer operands;
    /// overflow and `/` have no integer value), so grouping by a computed
    /// key never silently wraps.
    #[inline]
    pub fn i64_at(&self, row: usize) -> Option<i64> {
        match &self.kind {
            BoundKind::Leaf { column, func } => match *func {
                TimeFunc::Identity => column.i64_at(row),
                TimeFunc::Year => Some(time::year_of(self.raw(row))),
                TimeFunc::Month => Some(time::month_of(self.raw(row))),
                TimeFunc::Day => Some(time::day_of(self.raw(row))),
                TimeFunc::Hour => Some(time::hour_of(self.raw(row))),
                TimeFunc::Indicator { op, threshold } => {
                    let v = column.f64_at(row)?;
                    Some(i64::from(op.evaluate_f64(v, threshold)))
                }
            },
            BoundKind::Literal(v) => {
                (v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64)
                    .then_some(*v as i64)
            }
            BoundKind::Binary { op, left, right } => {
                let l = left.i64_at(row)?;
                let r = right.i64_at(row)?;
                match op {
                    ArithOp::Add => l.checked_add(r),
                    ArithOp::Sub => l.checked_sub(r),
                    ArithOp::Mul => l.checked_mul(r),
                    ArithOp::Div => None,
                }
            }
            BoundKind::Case { whens, otherwise } => {
                for w in whens {
                    if let (Some(l), Some(r)) = (w.lhs.f64_at(row), w.rhs.f64_at(row)) {
                        if w.op.evaluate_f64(l, r) {
                            return w.then.i64_at(row);
                        }
                    }
                }
                otherwise.as_ref().and_then(|e| e.i64_at(row))
            }
        }
    }

    /// Dictionary code at `row`, if this is a plain string column reference.
    #[inline]
    pub fn str_code_at(&self, row: usize) -> Option<u32> {
        match &self.kind {
            BoundKind::Leaf { column, func: TimeFunc::Identity } => column.str_code_at(row),
            _ => None,
        }
    }

    /// The whole column as a dense `f64` slice, when this expression is
    /// the identity over a `Float64` column — the gather fast path of the
    /// vectorized statistics kernels (no per-row dispatch, no `Option`).
    #[inline]
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match &self.kind {
            BoundKind::Leaf { column, func: TimeFunc::Identity } => column.f64_slice(),
            _ => None,
        }
    }

    /// The underlying column. Only meaningful for plain column references
    /// (check [`BoundExpr::is_plain_str`] first); panics on computed
    /// expressions, which have no single underlying column.
    pub fn column(&self) -> &Column {
        match &self.kind {
            BoundKind::Leaf { column, .. } => column,
            _ => panic!("column() on a computed expression"),
        }
    }

    /// Whether this bound expression is a bare string column (usable as
    /// pre-encoded group codes).
    pub fn is_plain_str(&self) -> bool {
        matches!(
            &self.kind,
            BoundKind::Leaf { column: Column::Str { .. }, func: TimeFunc::Identity }
        )
    }

    #[inline]
    fn raw(&self, row: usize) -> i64 {
        match &self.kind {
            BoundKind::Leaf { column, .. } => {
                column.i64_at(row).expect("bind() verified integer-like input")
            }
            _ => unreachable!("raw() is a leaf helper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::time::epoch_seconds;

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("country", DataType::Str),
            ("value", DataType::Float64),
            ("local_time", DataType::Timestamp),
        ]);
        b.push_row(&[
            Value::str("US"),
            Value::Float64(0.5),
            Value::Timestamp(epoch_seconds(2017, 3, 9, 13, 0, 0)),
        ])
        .unwrap();
        b.push_row(&[
            Value::str("VN"),
            Value::Float64(1.5),
            Value::Timestamp(epoch_seconds(2018, 11, 2, 4, 30, 0)),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn column_ref() {
        let t = table();
        let e = ScalarExpr::col("value").bind(&t).unwrap();
        assert_eq!(e.f64_at(1), Some(1.5));
        assert_eq!(e.value_at(0), Value::Float64(0.5));
    }

    #[test]
    fn year_month_hour() {
        let t = table();
        let y = ScalarExpr::year("local_time").bind(&t).unwrap();
        let m = ScalarExpr::month("local_time").bind(&t).unwrap();
        let h = ScalarExpr::hour("local_time").bind(&t).unwrap();
        assert_eq!(y.i64_at(0), Some(2017));
        assert_eq!(y.i64_at(1), Some(2018));
        assert_eq!(m.i64_at(1), Some(11));
        assert_eq!(h.i64_at(0), Some(13));
        assert_eq!(y.value_at(0), Value::Int64(2017));
    }

    #[test]
    fn year_over_string_rejected() {
        let t = table();
        let err = ScalarExpr::year("country").bind(&t).unwrap_err();
        assert!(matches!(err, TableError::InvalidFunctionInput { function: "YEAR", .. }));
    }

    #[test]
    fn str_code_passthrough() {
        let t = table();
        let e = ScalarExpr::col("country").bind(&t).unwrap();
        assert!(e.is_plain_str());
        assert_eq!(e.str_code_at(0), Some(0));
        assert_eq!(e.str_code_at(1), Some(1));
        let y = ScalarExpr::year("local_time").bind(&t).unwrap();
        assert!(!y.is_plain_str());
        assert_eq!(y.str_code_at(0), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalarExpr::col("x").display_name(), "x");
        assert_eq!(ScalarExpr::year("t").display_name(), "YEAR(t)");
        assert_eq!(ScalarExpr::hour("t").to_string(), "HOUR(t)");
        assert_eq!(ScalarExpr::lit(2.5).display_name(), "2.5");
        assert_eq!(
            ScalarExpr::binary(ArithOp::Mul, ScalarExpr::col("x"), ScalarExpr::lit(2.0))
                .display_name(),
            "(x * 2)"
        );
        assert_eq!(
            ScalarExpr::Case {
                whens: vec![CaseWhen {
                    lhs: ScalarExpr::col("x"),
                    op: CmpOp::Gt,
                    rhs: ScalarExpr::lit(1.0),
                    then: ScalarExpr::lit(10.0),
                }],
                otherwise: Some(Box::new(ScalarExpr::lit(0.0))),
            }
            .display_name(),
            "CASE WHEN x > 1 THEN 10 ELSE 0 END"
        );
    }

    #[test]
    fn missing_column() {
        let t = table();
        assert!(ScalarExpr::col("nope").bind(&t).is_err());
    }

    #[test]
    fn indicator_evaluates() {
        let t = table();
        let e = ScalarExpr::indicator("value", CmpOp::Gt, 1.0).bind(&t).unwrap();
        assert_eq!(e.f64_at(0), Some(0.0)); // value 0.5
        assert_eq!(e.f64_at(1), Some(1.0)); // value 1.5
        assert_eq!(e.i64_at(1), Some(1));
        assert_eq!(e.value_at(0), Value::Int64(0));
    }

    #[test]
    fn indicator_display_and_eq() {
        let a = ScalarExpr::indicator("value", CmpOp::Gt, 0.04);
        assert_eq!(a.display_name(), "IND(value > 0.04)");
        let b = ScalarExpr::indicator("value", CmpOp::Gt, 0.04);
        assert_eq!(a, b);
        assert_ne!(a, ScalarExpr::indicator("value", CmpOp::Gt, 0.05));
    }

    #[test]
    fn indicator_over_string_rejected() {
        let t = table();
        assert!(ScalarExpr::indicator("country", CmpOp::Gt, 1.0).bind(&t).is_err());
    }

    #[test]
    fn arithmetic_evaluates() {
        let t = table();
        let e = ScalarExpr::binary(
            ArithOp::Add,
            ScalarExpr::binary(ArithOp::Mul, ScalarExpr::col("value"), ScalarExpr::lit(2.0)),
            ScalarExpr::lit(1.0),
        )
        .bind(&t)
        .unwrap();
        assert_eq!(e.f64_at(0), Some(2.0)); // 0.5 * 2 + 1
        assert_eq!(e.f64_at(1), Some(4.0)); // 1.5 * 2 + 1
    }

    #[test]
    fn division_by_zero_has_no_value() {
        let t = table();
        let e = ScalarExpr::binary(ArithOp::Div, ScalarExpr::col("value"), ScalarExpr::lit(0.0))
            .bind(&t)
            .unwrap();
        assert_eq!(e.f64_at(0), None);
        assert!(matches!(e.value_at(0), Value::Float64(v) if v.is_nan()));
    }

    #[test]
    fn integer_arithmetic_is_checked() {
        let mut b = TableBuilder::new(&[("n", DataType::Int64)]);
        b.push_row(&[Value::Int64(i64::MAX)]).unwrap();
        b.push_row(&[Value::Int64(3)]).unwrap();
        let t = b.finish();
        let e = ScalarExpr::binary(ArithOp::Add, ScalarExpr::col("n"), ScalarExpr::lit(1.0))
            .bind(&t)
            .unwrap();
        assert_eq!(e.i64_at(0), None, "overflow has no integer value");
        assert_eq!(e.i64_at(1), Some(4));
    }

    #[test]
    fn case_evaluates_arms_in_order() {
        let t = table();
        let e = ScalarExpr::Case {
            whens: vec![
                CaseWhen {
                    lhs: ScalarExpr::col("value"),
                    op: CmpOp::Gt,
                    rhs: ScalarExpr::lit(1.0),
                    then: ScalarExpr::lit(100.0),
                },
                CaseWhen {
                    lhs: ScalarExpr::col("value"),
                    op: CmpOp::Gt,
                    rhs: ScalarExpr::lit(0.0),
                    then: ScalarExpr::col("value"),
                },
            ],
            otherwise: None,
        }
        .bind(&t)
        .unwrap();
        assert_eq!(e.f64_at(0), Some(0.5)); // second arm
        assert_eq!(e.f64_at(1), Some(100.0)); // first arm wins
    }

    #[test]
    fn case_without_else_has_no_value() {
        let t = table();
        let e = ScalarExpr::Case {
            whens: vec![CaseWhen {
                lhs: ScalarExpr::col("value"),
                op: CmpOp::Gt,
                rhs: ScalarExpr::lit(100.0),
                then: ScalarExpr::lit(1.0),
            }],
            otherwise: None,
        }
        .bind(&t)
        .unwrap();
        assert_eq!(e.f64_at(0), None);
    }

    #[test]
    fn arithmetic_over_string_rejected() {
        let t = table();
        let e = ScalarExpr::binary(ArithOp::Add, ScalarExpr::col("country"), ScalarExpr::lit(1.0));
        assert!(e.bind(&t).is_err());
        let c = ScalarExpr::Case {
            whens: vec![CaseWhen {
                lhs: ScalarExpr::col("country"),
                op: CmpOp::Eq,
                rhs: ScalarExpr::lit(1.0),
                then: ScalarExpr::lit(1.0),
            }],
            otherwise: None,
        };
        assert!(c.bind(&t).is_err());
    }
}

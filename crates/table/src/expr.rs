//! Scalar expressions: column references and calendar functions.

use std::fmt;

use crate::column::Column;
use crate::error::TableError;
use crate::table::Table;
use crate::time;
use crate::types::{DataType, Value};
use crate::Result;

/// A scalar expression evaluated per row.
///
/// Expressions stay deliberately small — column references, the calendar
/// extractors the paper's queries need (`YEAR`, `MONTH`, `HOUR` over
/// epoch-second timestamps), and 0/1 indicator expressions
/// (`IND(col > t)`), which let the sampling framework treat `COUNT_IF`
/// aggregates as ordinary value columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarExpr {
    /// A column referenced by name.
    Column(String),
    /// `YEAR(expr)` — calendar year of a timestamp expression.
    Year(Box<ScalarExpr>),
    /// `MONTH(expr)` — month (1–12) of a timestamp expression.
    Month(Box<ScalarExpr>),
    /// `DAY(expr)` — day of month (1–31) of a timestamp expression.
    Day(Box<ScalarExpr>),
    /// `HOUR(expr)` — hour of day (0–23) of a timestamp expression.
    Hour(Box<ScalarExpr>),
    /// `IND(col OP t)` — 1 if the comparison holds, else 0. The threshold is
    /// stored as IEEE-754 bits so the type stays `Eq`/hashable.
    Indicator {
        /// Compared column (a plain column reference).
        input: Box<ScalarExpr>,
        /// Comparison operator.
        op: crate::predicate::CmpOp,
        /// `f64::to_bits` of the threshold.
        threshold_bits: u64,
    },
}

impl ScalarExpr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Column(name.into())
    }

    /// `YEAR(col)` shorthand.
    pub fn year(name: impl Into<String>) -> Self {
        ScalarExpr::Year(Box::new(ScalarExpr::col(name)))
    }

    /// `MONTH(col)` shorthand.
    pub fn month(name: impl Into<String>) -> Self {
        ScalarExpr::Month(Box::new(ScalarExpr::col(name)))
    }

    /// `HOUR(col)` shorthand.
    pub fn hour(name: impl Into<String>) -> Self {
        ScalarExpr::Hour(Box::new(ScalarExpr::col(name)))
    }

    /// `IND(col OP threshold)` shorthand: a 0/1 indicator column.
    pub fn indicator(name: impl Into<String>, op: crate::predicate::CmpOp, threshold: f64) -> Self {
        ScalarExpr::Indicator {
            input: Box::new(ScalarExpr::col(name)),
            op,
            threshold_bits: threshold.to_bits(),
        }
    }

    /// A short display name, used for result column labels.
    pub fn display_name(&self) -> String {
        match self {
            ScalarExpr::Column(name) => name.clone(),
            ScalarExpr::Year(inner) => format!("YEAR({})", inner.display_name()),
            ScalarExpr::Month(inner) => format!("MONTH({})", inner.display_name()),
            ScalarExpr::Day(inner) => format!("DAY({})", inner.display_name()),
            ScalarExpr::Hour(inner) => format!("HOUR({})", inner.display_name()),
            ScalarExpr::Indicator { input, op, threshold_bits } => {
                format!("IND({} {} {})", input.display_name(), op, f64::from_bits(*threshold_bits))
            }
        }
    }

    /// Bind this expression against a table, producing an evaluator that can
    /// be applied per row without further name resolution.
    pub fn bind<'t>(&self, table: &'t Table) -> Result<BoundExpr<'t>> {
        match self {
            ScalarExpr::Column(name) => {
                let column = table.column_by_name(name)?;
                Ok(BoundExpr { column, func: TimeFunc::Identity })
            }
            ScalarExpr::Year(inner) => Self::bind_time(inner, table, TimeFunc::Year, "YEAR"),
            ScalarExpr::Month(inner) => Self::bind_time(inner, table, TimeFunc::Month, "MONTH"),
            ScalarExpr::Day(inner) => Self::bind_time(inner, table, TimeFunc::Day, "DAY"),
            ScalarExpr::Hour(inner) => Self::bind_time(inner, table, TimeFunc::Hour, "HOUR"),
            ScalarExpr::Indicator { input, op, threshold_bits } => {
                let ScalarExpr::Column(col_name) = input.as_ref() else {
                    return Err(TableError::InvalidFunctionInput {
                        function: "IND",
                        input: "nested expressions are not supported".into(),
                    });
                };
                let column = table.column_by_name(col_name)?;
                if !column.data_type().is_numeric() {
                    return Err(TableError::InvalidFunctionInput {
                        function: "IND",
                        input: format!("column {col_name} has type {}", column.data_type()),
                    });
                }
                Ok(BoundExpr {
                    column,
                    func: TimeFunc::Indicator {
                        op: *op,
                        threshold: f64::from_bits(*threshold_bits),
                    },
                })
            }
        }
    }

    fn bind_time<'t>(
        inner: &ScalarExpr,
        table: &'t Table,
        func: TimeFunc,
        name: &'static str,
    ) -> Result<BoundExpr<'t>> {
        let ScalarExpr::Column(col_name) = inner else {
            return Err(TableError::InvalidFunctionInput {
                function: name,
                input: "nested expressions are not supported".into(),
            });
        };
        let column = table.column_by_name(col_name)?;
        if !matches!(column.data_type(), DataType::Timestamp | DataType::Int64) {
            return Err(TableError::InvalidFunctionInput {
                function: name,
                input: format!("column {col_name} has type {}", column.data_type()),
            });
        }
        Ok(BoundExpr { column, func })
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_name())
    }
}

#[derive(Debug, Clone, Copy)]
enum TimeFunc {
    Identity,
    Year,
    Month,
    Day,
    Hour,
    Indicator { op: crate::predicate::CmpOp, threshold: f64 },
}

/// A [`ScalarExpr`] bound to a concrete column of a table.
#[derive(Debug, Clone, Copy)]
pub struct BoundExpr<'t> {
    column: &'t Column,
    func: TimeFunc,
}

impl BoundExpr<'_> {
    /// Evaluate at `row` as a dynamic [`Value`].
    pub fn value_at(&self, row: usize) -> Value {
        match self.func {
            TimeFunc::Identity => self.column.value(row),
            TimeFunc::Year => Value::Int64(time::year_of(self.raw(row))),
            TimeFunc::Month => Value::Int64(time::month_of(self.raw(row))),
            TimeFunc::Day => Value::Int64(time::day_of(self.raw(row))),
            TimeFunc::Hour => Value::Int64(time::hour_of(self.raw(row))),
            TimeFunc::Indicator { .. } => {
                Value::Int64(self.i64_at(row).expect("indicator over numeric column"))
            }
        }
    }

    /// Evaluate at `row` as a float, if numeric.
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        match self.func {
            TimeFunc::Identity => self.column.f64_at(row),
            TimeFunc::Year => Some(time::year_of(self.raw(row)) as f64),
            TimeFunc::Month => Some(time::month_of(self.raw(row)) as f64),
            TimeFunc::Day => Some(time::day_of(self.raw(row)) as f64),
            TimeFunc::Hour => Some(time::hour_of(self.raw(row)) as f64),
            TimeFunc::Indicator { op, threshold } => {
                let v = self.column.f64_at(row)?;
                Some(if op.evaluate_f64(v, threshold) { 1.0 } else { 0.0 })
            }
        }
    }

    /// Evaluate at `row` as an integer, if integer-like.
    #[inline]
    pub fn i64_at(&self, row: usize) -> Option<i64> {
        match self.func {
            TimeFunc::Identity => self.column.i64_at(row),
            TimeFunc::Year => Some(time::year_of(self.raw(row))),
            TimeFunc::Month => Some(time::month_of(self.raw(row))),
            TimeFunc::Day => Some(time::day_of(self.raw(row))),
            TimeFunc::Hour => Some(time::hour_of(self.raw(row))),
            TimeFunc::Indicator { op, threshold } => {
                let v = self.column.f64_at(row)?;
                Some(i64::from(op.evaluate_f64(v, threshold)))
            }
        }
    }

    /// Dictionary code at `row`, if this is a plain string column reference.
    #[inline]
    pub fn str_code_at(&self, row: usize) -> Option<u32> {
        match self.func {
            TimeFunc::Identity => self.column.str_code_at(row),
            _ => None,
        }
    }

    /// The whole column as a dense `f64` slice, when this expression is
    /// the identity over a `Float64` column — the gather fast path of the
    /// vectorized statistics kernels (no per-row dispatch, no `Option`).
    #[inline]
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match self.func {
            TimeFunc::Identity => self.column.f64_slice(),
            _ => None,
        }
    }

    /// The underlying column.
    pub fn column(&self) -> &Column {
        self.column
    }

    /// Whether this bound expression is a bare string column (usable as
    /// pre-encoded group codes).
    pub fn is_plain_str(&self) -> bool {
        matches!(self.func, TimeFunc::Identity) && matches!(self.column, Column::Str { .. })
    }

    #[inline]
    fn raw(&self, row: usize) -> i64 {
        self.column.i64_at(row).expect("bind() verified integer-like input")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::time::epoch_seconds;

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("country", DataType::Str),
            ("value", DataType::Float64),
            ("local_time", DataType::Timestamp),
        ]);
        b.push_row(&[
            Value::str("US"),
            Value::Float64(0.5),
            Value::Timestamp(epoch_seconds(2017, 3, 9, 13, 0, 0)),
        ])
        .unwrap();
        b.push_row(&[
            Value::str("VN"),
            Value::Float64(1.5),
            Value::Timestamp(epoch_seconds(2018, 11, 2, 4, 30, 0)),
        ])
        .unwrap();
        b.finish()
    }

    #[test]
    fn column_ref() {
        let t = table();
        let e = ScalarExpr::col("value").bind(&t).unwrap();
        assert_eq!(e.f64_at(1), Some(1.5));
        assert_eq!(e.value_at(0), Value::Float64(0.5));
    }

    #[test]
    fn year_month_hour() {
        let t = table();
        let y = ScalarExpr::year("local_time").bind(&t).unwrap();
        let m = ScalarExpr::month("local_time").bind(&t).unwrap();
        let h = ScalarExpr::hour("local_time").bind(&t).unwrap();
        assert_eq!(y.i64_at(0), Some(2017));
        assert_eq!(y.i64_at(1), Some(2018));
        assert_eq!(m.i64_at(1), Some(11));
        assert_eq!(h.i64_at(0), Some(13));
        assert_eq!(y.value_at(0), Value::Int64(2017));
    }

    #[test]
    fn year_over_string_rejected() {
        let t = table();
        let err = ScalarExpr::year("country").bind(&t).unwrap_err();
        assert!(matches!(err, TableError::InvalidFunctionInput { function: "YEAR", .. }));
    }

    #[test]
    fn str_code_passthrough() {
        let t = table();
        let e = ScalarExpr::col("country").bind(&t).unwrap();
        assert!(e.is_plain_str());
        assert_eq!(e.str_code_at(0), Some(0));
        assert_eq!(e.str_code_at(1), Some(1));
        let y = ScalarExpr::year("local_time").bind(&t).unwrap();
        assert!(!y.is_plain_str());
        assert_eq!(y.str_code_at(0), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalarExpr::col("x").display_name(), "x");
        assert_eq!(ScalarExpr::year("t").display_name(), "YEAR(t)");
        assert_eq!(ScalarExpr::hour("t").to_string(), "HOUR(t)");
    }

    #[test]
    fn missing_column() {
        let t = table();
        assert!(ScalarExpr::col("nope").bind(&t).is_err());
    }

    #[test]
    fn indicator_evaluates() {
        use crate::predicate::CmpOp;
        let t = table();
        let e = ScalarExpr::indicator("value", CmpOp::Gt, 1.0).bind(&t).unwrap();
        assert_eq!(e.f64_at(0), Some(0.0)); // value 0.5
        assert_eq!(e.f64_at(1), Some(1.0)); // value 1.5
        assert_eq!(e.i64_at(1), Some(1));
        assert_eq!(e.value_at(0), Value::Int64(0));
    }

    #[test]
    fn indicator_display_and_eq() {
        use crate::predicate::CmpOp;
        let a = ScalarExpr::indicator("value", CmpOp::Gt, 0.04);
        assert_eq!(a.display_name(), "IND(value > 0.04)");
        let b = ScalarExpr::indicator("value", CmpOp::Gt, 0.04);
        assert_eq!(a, b);
        assert_ne!(a, ScalarExpr::indicator("value", CmpOp::Gt, 0.05));
    }

    #[test]
    fn indicator_over_string_rejected() {
        use crate::predicate::CmpOp;
        let t = table();
        assert!(ScalarExpr::indicator("country", CmpOp::Gt, 1.0).bind(&t).is_err());
    }
}

//! The shard-pass surface: what a shard must answer for scatter-gather.
//!
//! [`ShardedTable`] (see [`crate::shard`]) proved that only four things
//! ever cross a shard boundary: a shard-local group index, a shard-local
//! predicate bitmap, per-row expression values, and gathered rows. This
//! module extracts that surface into the [`ShardReader`] trait so a shard
//! can live anywhere — [`LocalShard`] wraps an in-process [`Table`], and a
//! remote implementation can answer the same four questions over a wire —
//! and [`ShardSet`] runs the scatter-gather passes over any mix of them.
//!
//! The determinism contract is inherited unchanged: every pass over a
//! `ShardSet` merges shard answers in **fixed shard order** (global row
//! order) and anchors float accumulation to global partitions, so the
//! result is byte-identical to the same pass over the concatenated single
//! table — and therefore to a local [`ShardedTable`] with the same layout —
//! for any thread count. For that to hold, an implementation must answer
//! each request exactly as `LocalShard` would: the same first-seen group
//! interning, the same bitmap bits, bit-equal `f64` values.

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::error::TableError;
use crate::exec::{self, ExecOptions, RowRange};
use crate::expr::ScalarExpr;
use crate::groupby::GroupIndex;
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::shard::{ShardSegment, ShardedTable};
use crate::table::{Table, TableBuilder};
use crate::Result;

/// Per-row values of one expression over a whole shard, as shipped across
/// the pass boundary. `Dense` is the contiguous-`f64`-column fast path
/// (exactly when the shard-side expression exposes a
/// [`f64_slice`](crate::expr::BoundExpr::f64_slice)); `Sparse` carries the
/// per-row [`f64_at`](crate::expr::BoundExpr::f64_at) outputs, missing
/// values included. Which variant arrives is a property of the schema and
/// expression alone, never of the data, so every shard of a set agrees.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    /// One value per row; the expression is a plain `Float64` column.
    Dense(Vec<f64>),
    /// One optional value per row (non-numeric rows are `None`).
    Sparse(Vec<Option<f64>>),
}

impl ColumnValues {
    /// Whether this is the dense (plain `Float64` column) representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, ColumnValues::Dense(_))
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Dense(v) => v.len(),
            ColumnValues::Sparse(v) => v.len(),
        }
    }

    /// Whether the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row` (`None` for a missing value), matching the shard-side
    /// `f64_at` bit for bit.
    #[inline]
    pub fn get(&self, row: usize) -> Option<f64> {
        match self {
            ColumnValues::Dense(v) => Some(v[row]),
            ColumnValues::Sparse(v) => v[row],
        }
    }

    /// The dense values, if this is the dense representation.
    pub fn dense(&self) -> Option<&[f64]> {
        match self {
            ColumnValues::Dense(v) => Some(v),
            ColumnValues::Sparse(_) => None,
        }
    }
}

/// One shard's answers to the four scatter-gather pass requests.
///
/// Implementations must be *deterministic mirrors* of [`LocalShard`]: for
/// the same shard contents, every method returns the identical value
/// (bit-equal floats included), because the coordinator's merges assume
/// shard answers are interchangeable with in-process ones.
pub trait ShardReader: std::fmt::Debug + Send + Sync {
    /// The shard's schema.
    fn schema(&self) -> &Schema;

    /// Number of rows the shard owns.
    fn num_rows(&self) -> usize;

    /// Human-readable location for error messages and `/explain`
    /// (e.g. `local` or `127.0.0.1:7000/t/0`).
    fn location(&self) -> String;

    /// Shard-local group index over `exprs` (sequential build order).
    fn group_index(&self, exprs: &[ScalarExpr]) -> Result<GroupIndex>;

    /// Shard-local predicate bitmap over all rows.
    fn predicate_bitmap(&self, predicate: &Predicate) -> Result<Bitmap>;

    /// Per-row values for each expression (`None` entries pass through,
    /// for aggregates like `COUNT(*)` with no input).
    fn expr_values(&self, exprs: &[Option<ScalarExpr>]) -> Result<Vec<Option<ColumnValues>>>;

    /// Copy the shard-local `rows`, in the given order, into a table.
    fn take_rows(&self, rows: &[u32]) -> Result<Table>;
}

/// An in-process [`ShardReader`] over an owned [`Table`] — the reference
/// implementation every other one must match bit for bit.
#[derive(Debug, Clone)]
pub struct LocalShard {
    table: Table,
}

impl LocalShard {
    /// Wrap an owned table.
    pub fn new(table: Table) -> LocalShard {
        LocalShard { table }
    }

    /// The wrapped table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

impl ShardReader for LocalShard {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    fn location(&self) -> String {
        "local".to_string()
    }

    fn group_index(&self, exprs: &[ScalarExpr]) -> Result<GroupIndex> {
        // Sequential inside the shard: the shard level is where the
        // coordinator parallelizes, and the build is thread-count
        // invariant anyway.
        GroupIndex::build_with(&self.table, exprs, &ExecOptions::sequential())
    }

    fn predicate_bitmap(&self, predicate: &Predicate) -> Result<Bitmap> {
        Ok(predicate
            .bind(&self.table)?
            .eval_bitmap_with(self.table.num_rows(), &ExecOptions::sequential()))
    }

    fn expr_values(&self, exprs: &[Option<ScalarExpr>]) -> Result<Vec<Option<ColumnValues>>> {
        let n = self.table.num_rows();
        exprs
            .iter()
            .map(|expr| {
                let Some(expr) = expr else { return Ok(None) };
                let bound = expr.bind(&self.table)?;
                Ok(Some(match bound.f64_slice() {
                    Some(values) => ColumnValues::Dense(values.to_vec()),
                    None => ColumnValues::Sparse((0..n).map(|row| bound.f64_at(row)).collect()),
                }))
            })
            .collect()
    }

    fn take_rows(&self, rows: &[u32]) -> Result<Table> {
        let n = self.table.num_rows();
        if let Some(&bad) = rows.iter().find(|&&r| r as usize >= n) {
            return Err(TableError::invalid(format!(
                "take_rows row {bad} out of range for a {n}-row shard"
            )));
        }
        let rows: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
        Ok(self.table.take(&rows))
    }
}

/// A set of [`ShardReader`]s with one logical row space — the coordinator's
/// counterpart of [`ShardedTable`], generalized over where shards live.
///
/// Offset layout, row location, and segment math are identical to
/// `ShardedTable`'s, so a pass over a `ShardSet` of [`LocalShard`]s is the
/// same computation as the corresponding `*_sharded` pass.
#[derive(Debug, Clone)]
pub struct ShardSet {
    readers: Vec<Arc<dyn ShardReader>>,
    /// `offsets[s]` is the global row id of shard `s`'s first row;
    /// `offsets[num_shards]` is the total row count.
    offsets: Vec<usize>,
}

impl ShardSet {
    /// Assemble a set from schema-identical readers (empty shards allowed;
    /// at least one reader required so the schema is defined).
    pub fn new(readers: Vec<Arc<dyn ShardReader>>) -> Result<ShardSet> {
        let Some(first) = readers.first() else {
            return Err(TableError::invalid("a shard set needs at least one shard"));
        };
        for (s, reader) in readers.iter().enumerate().skip(1) {
            if reader.schema() != first.schema() {
                return Err(TableError::invalid(format!(
                    "shard {s} ({}) schema differs from shard 0's ({})",
                    reader.location(),
                    first.location()
                )));
            }
        }
        let mut offsets = Vec::with_capacity(readers.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for reader in &readers {
            total += reader.num_rows();
            offsets.push(total);
        }
        Ok(ShardSet { readers, offsets })
    }

    /// Wrap every shard of a [`ShardedTable`] in a [`LocalShard`].
    pub fn from_sharded(table: &ShardedTable) -> ShardSet {
        let readers: Vec<Arc<dyn ShardReader>> =
            table.shards().iter().map(|t| Arc::new(LocalShard::new(t.clone())) as _).collect();
        ShardSet::new(readers).expect("sharded table shards are schema-identical")
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        self.readers[0].schema()
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.readers.len()
    }

    /// Total logical rows across all shards.
    pub fn num_rows(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Reader for shard `s`.
    pub fn reader(&self, s: usize) -> &Arc<dyn ShardReader> {
        &self.readers[s]
    }

    /// All readers in shard order.
    pub fn readers(&self) -> &[Arc<dyn ShardReader>] {
        &self.readers
    }

    /// Global row id of shard `s`'s first row (and the total row count at
    /// index `num_shards`) — same layout as [`ShardedTable::offsets`].
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Per-shard row counts, in shard order (the shard *layout*; folded
    /// into engine fingerprints, identically to a local sharded table's).
    pub fn shard_rows(&self) -> Vec<usize> {
        self.readers.iter().map(|r| r.num_rows()).collect()
    }

    /// Per-shard locations, in shard order (for `/explain` and errors).
    pub fn locations(&self) -> Vec<String> {
        self.readers.iter().map(|r| r.location()).collect()
    }

    /// The shard containing global `row`, and the row's shard-local id —
    /// same math as [`ShardedTable::locate`].
    pub fn locate(&self, row: usize) -> (usize, usize) {
        debug_assert!(row < self.num_rows(), "row {row} out of range");
        let shard = self.offsets.partition_point(|&o| o <= row) - 1;
        let shard = (0..=shard).rev().find(|&s| self.offsets[s + 1] > row).expect("row in range");
        (shard, row - self.offsets[shard])
    }

    /// The shard segments covering the global row range, in shard order —
    /// same math as [`ShardedTable::segments`].
    pub fn segments(&self, range: RowRange) -> Vec<ShardSegment> {
        let mut out = Vec::new();
        for s in 0..self.readers.len() {
            let shard_start = self.offsets[s];
            let shard_end = self.offsets[s + 1];
            let start = range.start.max(shard_start);
            let end = range.end.min(shard_end);
            if start < end {
                out.push(ShardSegment {
                    shard: s,
                    local: RowRange { start: start - shard_start, end: end - shard_start },
                    global_start: start,
                });
            }
        }
        out
    }

    /// Build the group index over the set's logical row space: one
    /// scatter-window request per shard (in parallel), merged **in shard
    /// order** — the same merge as [`GroupIndex::build_sharded`], so the
    /// result is identical to building over the concatenated table.
    pub fn build_group_index(
        &self,
        exprs: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<GroupIndex> {
        let dim_names: Vec<String> = exprs.iter().map(|e| e.display_name()).collect();
        let n = self.num_rows();
        if exprs.is_empty() {
            // Same early return as the local builds: one group, no shard
            // round-trips needed.
            return GroupIndex::from_parts(dim_names, vec![0; n], vec![Vec::new()], vec![n as u64]);
        }
        let locals: Vec<GroupIndex> =
            exec::run_indexed(self.num_shards(), options, |s| self.readers[s].group_index(exprs))
                .into_iter()
                .collect::<Result<_>>()?;
        for (s, local) in locals.iter().enumerate() {
            if local.num_rows() != self.readers[s].num_rows() {
                return Err(TableError::invalid(format!(
                    "shard {s} ({}) returned a {}-row scatter window for {} rows",
                    self.readers[s].location(),
                    local.num_rows(),
                    self.readers[s].num_rows()
                )));
            }
        }
        Ok(GroupIndex::merge_shard_locals(dim_names, &locals, n))
    }

    /// Per-shard predicate bitmaps, in shard order — the counterpart of
    /// [`Predicate::eval_sharded`].
    pub fn eval_predicate(
        &self,
        predicate: &Predicate,
        options: &ExecOptions,
    ) -> Result<Vec<Bitmap>> {
        let bitmaps: Vec<Bitmap> = exec::run_indexed(self.num_shards(), options, |s| {
            self.readers[s].predicate_bitmap(predicate)
        })
        .into_iter()
        .collect::<Result<_>>()?;
        for (s, bm) in bitmaps.iter().enumerate() {
            if bm.len() != self.readers[s].num_rows() {
                return Err(TableError::invalid(format!(
                    "shard {s} ({}) returned a {}-row bitmap for {} rows",
                    self.readers[s].location(),
                    bm.len(),
                    self.readers[s].num_rows()
                )));
            }
        }
        Ok(bitmaps)
    }

    /// Per-shard expression values (outer index: shard; inner: expression),
    /// fetched in parallel.
    pub fn fetch_values(
        &self,
        exprs: &[Option<ScalarExpr>],
        options: &ExecOptions,
    ) -> Result<Vec<Vec<Option<ColumnValues>>>> {
        let per_shard: Vec<Vec<Option<ColumnValues>>> =
            exec::run_indexed(self.num_shards(), options, |s| self.readers[s].expr_values(exprs))
                .into_iter()
                .collect::<Result<_>>()?;
        for (s, columns) in per_shard.iter().enumerate() {
            if columns.len() != exprs.len() {
                return Err(TableError::invalid(format!(
                    "shard {s} ({}) returned {} value columns for {} expressions",
                    self.readers[s].location(),
                    columns.len(),
                    exprs.len()
                )));
            }
            let rows = self.readers[s].num_rows();
            for (c, col) in columns.iter().enumerate() {
                if let Some(col) = col {
                    if col.len() != rows {
                        return Err(TableError::invalid(format!(
                            "shard {s} ({}) returned {} values for column {c} over {rows} rows",
                            self.readers[s].location(),
                            col.len()
                        )));
                    }
                }
            }
        }
        Ok(per_shard)
    }

    /// Copy the rows with global ids in `rows` (in the given order) into a
    /// standalone [`Table`] — byte-identical to [`ShardedTable::gather`]
    /// over the same layout. Rows are fetched per shard in one batch each,
    /// then reassembled in request order.
    pub fn gather(&self, rows: &[usize]) -> Result<Table> {
        let num_shards = self.num_shards();
        let mut located = Vec::with_capacity(rows.len());
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        for &row in rows {
            if row >= self.num_rows() {
                return Err(TableError::invalid(format!(
                    "gather row {row} out of range for a {}-row shard set",
                    self.num_rows()
                )));
            }
            let (shard, local) = self.locate(row);
            located.push(shard);
            per_shard[shard].push(local as u32);
        }
        let fetched: Vec<Option<Table>> = (0..num_shards)
            .map(|s| {
                if per_shard[s].is_empty() {
                    Ok(None)
                } else {
                    self.readers[s].take_rows(&per_shard[s]).map(Some)
                }
            })
            .collect::<Result<_>>()?;
        for (s, t) in fetched.iter().enumerate() {
            if let Some(t) = t {
                if t.num_rows() != per_shard[s].len() || t.schema() != self.schema() {
                    return Err(TableError::invalid(format!(
                        "shard {s} ({}) returned a mismatched gather batch",
                        self.readers[s].location()
                    )));
                }
            }
        }

        // Reassemble in request order: rows were appended to each shard's
        // batch in request order too, so a per-shard cursor walks each
        // batch front to back. The push_row sequence is exactly the one
        // `ShardedTable::gather` performs.
        let mut b = TableBuilder::from_schema(self.schema().clone());
        b.reserve(rows.len());
        let mut cursors = vec![0usize; num_shards];
        for &shard in &located {
            let t = fetched[shard].as_ref().expect("fetched batch for a located shard");
            let values = t.row(cursors[shard]);
            cursors[shard] += 1;
            b.push_row(&values)?;
        }
        Ok(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Value};

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
            ("i", DataType::Int64),
        ]);
        for i in 0..n {
            b.push_row(&[
                Value::str(format!("g{}", i % 7)),
                Value::Float64((i as f64 * 0.37).sin()),
                Value::Int64((i % 11) as i64),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn uneven_set(t: &Table) -> (ShardedTable, ShardSet) {
        let empty = TableBuilder::from_schema(t.schema().clone()).finish();
        let n = t.num_rows();
        let sharded = ShardedTable::from_tables(vec![
            t.take(&(0..n / 5).collect::<Vec<_>>()),
            empty,
            t.take(&(n / 5..n).collect::<Vec<_>>()),
        ])
        .unwrap();
        let set = ShardSet::from_sharded(&sharded);
        (sharded, set)
    }

    #[test]
    fn offsets_locate_segments_match_sharded_table() {
        let t = table(500);
        let (sharded, set) = uneven_set(&t);
        assert_eq!(set.offsets(), sharded.offsets());
        assert_eq!(set.shard_rows(), sharded.shard_rows());
        for row in [0usize, 99, 100, 101, 499] {
            assert_eq!(set.locate(row), sharded.locate(row));
        }
        for range in [RowRange { start: 0, end: 500 }, RowRange { start: 50, end: 321 }] {
            assert_eq!(set.segments(range), sharded.segments(range));
        }
    }

    #[test]
    fn group_index_matches_sharded_build() {
        let t = table(500);
        let (sharded, set) = uneven_set(&t);
        let exprs = [ScalarExpr::col("g"), ScalarExpr::col("i")];
        let reference =
            GroupIndex::build_sharded(&sharded, &exprs, &ExecOptions::sequential()).unwrap();
        for threads in [1usize, 4] {
            let got = set.build_group_index(&exprs, &ExecOptions::new(threads)).unwrap();
            assert_eq!(got.row_groups(), reference.row_groups(), "threads {threads}");
            assert_eq!(got.sizes(), reference.sizes());
            for g in 0..reference.num_groups() as u32 {
                assert_eq!(got.key(g), reference.key(g));
            }
        }
        // Empty expression list: one group, no shard round trips.
        let gi = set.build_group_index(&[], &ExecOptions::sequential()).unwrap();
        assert_eq!(gi.num_groups(), 1);
        assert_eq!(gi.size(0), 500);
    }

    #[test]
    fn predicate_bitmaps_match_sharded_eval() {
        use crate::predicate::CmpOp;
        let t = table(500);
        let (sharded, set) = uneven_set(&t);
        let pred = Predicate::cmp("x", CmpOp::Gt, 0.0);
        let reference = pred.eval_sharded(&sharded, &ExecOptions::sequential()).unwrap();
        let got = set.eval_predicate(&pred, &ExecOptions::new(4)).unwrap();
        assert_eq!(got, reference);
    }

    #[test]
    fn expr_values_agree_with_bound_expressions() {
        let t = table(100);
        let shard = LocalShard::new(t.clone());
        let exprs = [
            Some(ScalarExpr::col("x")),
            Some(ScalarExpr::col("i")),
            None,
            Some(ScalarExpr::col("g")),
        ];
        let cols = shard.expr_values(&exprs).unwrap();
        assert!(cols[0].as_ref().unwrap().is_dense());
        assert!(!cols[1].as_ref().unwrap().is_dense());
        assert!(cols[2].is_none());
        let bx = ScalarExpr::col("x").bind(&t).unwrap();
        let bi = ScalarExpr::col("i").bind(&t).unwrap();
        for row in 0..100 {
            assert_eq!(cols[0].as_ref().unwrap().get(row), bx.f64_at(row));
            assert_eq!(cols[1].as_ref().unwrap().get(row), bi.f64_at(row));
            // Strings have no f64 value.
            assert_eq!(cols[3].as_ref().unwrap().get(row), None);
        }
    }

    #[test]
    fn gather_matches_sharded_gather() {
        let t = table(200);
        let (sharded, set) = uneven_set(&t);
        let rows = [199usize, 0, 40, 39, 150, 41];
        let got = set.gather(&rows).unwrap();
        let reference = sharded.gather(&rows);
        assert_eq!(got.num_rows(), reference.num_rows());
        for i in 0..rows.len() {
            assert_eq!(got.row(i), reference.row(i));
        }
        assert!(set.gather(&[500]).is_err());
    }

    #[test]
    fn new_rejects_schema_mismatch_and_emptiness() {
        let a = LocalShard::new(table(5));
        let mut b = TableBuilder::new(&[("other", DataType::Int64)]);
        b.push_row(&[Value::Int64(1)]).unwrap();
        let err =
            ShardSet::new(vec![Arc::new(a), Arc::new(LocalShard::new(b.finish()))]).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        assert!(ShardSet::new(Vec::new()).is_err());
    }

    #[test]
    fn take_rows_validates_bounds() {
        let shard = LocalShard::new(table(10));
        assert!(shard.take_rows(&[0, 9]).is_ok());
        assert!(shard.take_rows(&[10]).is_err());
    }
}

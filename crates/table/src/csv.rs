//! Minimal CSV reading/writing for tables and query results.
//!
//! Supports the RFC-4180 basics: comma separation, `"` quoting with `""`
//! escapes, and a header row. Good enough to load example data and dump
//! experiment outputs; not a general-purpose CSV library.

use std::io::{BufRead, Write};

use crate::error::TableError;
use crate::query::QueryResult;
use crate::schema::Schema;
use crate::table::{Table, TableBuilder};
use crate::types::{DataType, Value};
use crate::Result;

/// Split one CSV record into fields.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => current.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut current)),
                other => current.push(other),
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(current);
    Ok(fields)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse one field into a [`Value`] for a column of type `dtype`.
fn parse_value(field: &str, dtype: DataType, line_no: usize) -> Result<Value> {
    let err = |msg: String| TableError::Csv { line: line_no, message: msg };
    Ok(match dtype {
        DataType::Int64 => {
            Value::Int64(field.parse().map_err(|_| err(format!("bad int {field:?}")))?)
        }
        DataType::Float64 => {
            Value::Float64(field.parse().map_err(|_| err(format!("bad float {field:?}")))?)
        }
        DataType::Bool => match field {
            "true" | "TRUE" | "1" => Value::Bool(true),
            "false" | "FALSE" | "0" => Value::Bool(false),
            _ => return Err(err(format!("bad bool {field:?}"))),
        },
        DataType::Str => Value::str(field),
        DataType::Timestamp => {
            Value::Timestamp(field.parse().map_err(|_| err(format!("bad timestamp {field:?}")))?)
        }
    })
}

/// Read a table with a known schema from CSV with a header row.
///
/// The header must match the schema's column names exactly and in order.
pub fn read_table(reader: impl BufRead, schema: Schema) -> Result<Table> {
    let mut builder = TableBuilder::from_schema(schema.clone());
    let mut lines = reader.lines().enumerate();

    let (_, header) = lines
        .next()
        .ok_or_else(|| TableError::Csv { line: 1, message: "missing header".into() })?;
    let header =
        header.map_err(|e| TableError::Csv { line: 1, message: format!("io error: {e}") })?;
    let names = split_record(&header, 1)?;
    let expected = schema.names();
    if names != expected {
        return Err(TableError::Csv {
            line: 1,
            message: format!("header {names:?} does not match schema {expected:?}"),
        });
    }

    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line =
            line.map_err(|e| TableError::Csv { line: line_no, message: format!("io error: {e}") })?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, line_no)?;
        if fields.len() != schema.len() {
            return Err(TableError::Csv {
                line: line_no,
                message: format!("expected {} fields, found {}", schema.len(), fields.len()),
            });
        }
        row.clear();
        for (field, f) in fields.iter().zip(schema.fields()) {
            row.push(parse_value(field, f.dtype, line_no)?);
        }
        builder.push_row(&row)?;
    }
    Ok(builder.finish())
}

/// Write a table to CSV with a header row.
pub fn write_table(table: &Table, mut writer: impl Write) -> std::io::Result<()> {
    let names: Vec<String> = table.schema().names().iter().map(|s| quote_field(s)).collect();
    writeln!(writer, "{}", names.join(","))?;
    for row in 0..table.num_rows() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| match c.value(row) {
                Value::Str(s) => quote_field(&s),
                other => other.to_string().trim_start_matches('@').to_string(),
            })
            .collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Write a query result to CSV (group key columns, then aggregates).
pub fn write_result(result: &QueryResult, mut writer: impl Write) -> std::io::Result<()> {
    let mut header: Vec<String> = result.grouping.iter().map(|s| quote_field(s)).collect();
    header.extend(result.agg_names.iter().map(|s| quote_field(s)));
    writeln!(writer, "{}", header.join(","))?;
    for (key, values) in result.iter() {
        let mut fields: Vec<String> = key.iter().map(|a| quote_field(&a.to_string())).collect();
        fields.extend(values.iter().map(|v| format!("{v}")));
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::ScalarExpr;
    use crate::query::GroupByQuery;

    fn schema() -> Schema {
        Schema::new(&[
            ("country", DataType::Str),
            ("value", DataType::Float64),
            ("n", DataType::Int64),
        ])
    }

    #[test]
    fn round_trip() {
        let csv = "country,value,n\nUS,1.5,3\nVN,0.25,-2\n\"A,B\",2.0,0\n";
        let t = read_table(csv.as_bytes(), schema()).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(2)[0], Value::str("A,B"));
        let mut out = Vec::new();
        write_table(&t, &mut out).unwrap();
        let t2 = read_table(out.as_slice(), schema()).unwrap();
        assert_eq!(t2.num_rows(), 3);
        assert_eq!(t2.row(1)[1], Value::Float64(0.25));
    }

    #[test]
    fn quoted_quotes() {
        let csv = "country,value,n\n\"say \"\"hi\"\"\",1.0,1\n";
        let t = read_table(csv.as_bytes(), schema()).unwrap();
        assert_eq!(t.row(0)[0], Value::str("say \"hi\""));
    }

    #[test]
    fn header_mismatch_rejected() {
        let csv = "a,b,c\n";
        assert!(read_table(csv.as_bytes(), schema()).is_err());
    }

    #[test]
    fn bad_field_count_rejected() {
        let csv = "country,value,n\nUS,1.0\n";
        let err = read_table(csv.as_bytes(), schema()).unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn bad_number_rejected() {
        let csv = "country,value,n\nUS,xyz,1\n";
        assert!(read_table(csv.as_bytes(), schema()).is_err());
    }

    #[test]
    fn empty_lines_skipped() {
        let csv = "country,value,n\nUS,1.0,1\n\nVN,2.0,2\n";
        let t = read_table(csv.as_bytes(), schema()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn write_result_csv() {
        let t = read_table("country,value,n\nUS,1.0,1\nUS,3.0,1\nVN,5.0,1\n".as_bytes(), schema())
            .unwrap();
        let q = GroupByQuery::new(vec![ScalarExpr::col("country")], vec![AggExpr::avg("value")]);
        let r = &q.execute(&t).unwrap()[0];
        let mut out = Vec::new();
        write_result(r, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("country,AVG(value)\n"));
        assert!(text.contains("US,2\n"));
        assert!(text.contains("VN,5\n"));
    }

    #[test]
    fn timestamps_round_trip() {
        let schema = Schema::new(&[("t", DataType::Timestamp)]);
        let csv = "t\n1000\n-5\n";
        let t = read_table(csv.as_bytes(), schema.clone()).unwrap();
        let mut out = Vec::new();
        write_table(&t, &mut out).unwrap();
        let t2 = read_table(out.as_slice(), schema).unwrap();
        assert_eq!(t2.row(0)[0], Value::Timestamp(1000));
        assert_eq!(t2.row(1)[0], Value::Timestamp(-5));
    }
}

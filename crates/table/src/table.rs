//! The [`Table`] container and its builder.

use crate::column::Column;
use crate::error::TableError;
use crate::schema::Schema;
use crate::types::{DataType, Value};
use crate::Result;

/// An immutable, in-memory, columnar table.
///
/// Built via [`TableBuilder`]; once built, the row count and column contents
/// never change, which lets samplers hold row ids (`usize`) into it safely.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl Table {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The full row at `row` as dynamically typed values (for debugging and
    /// small examples, not hot paths).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Approximate storage footprint in bytes, summed over the columns.
    ///
    /// A **pure function of the data** (fixed per-element widths plus
    /// dictionary string bytes — no platform pointer sizes, no allocator
    /// slack), so the value is identical on every machine. The engine's
    /// cache-economy accounting (bytes held, eviction ranks) is built on
    /// it and snapshotted into diffable counters.
    pub fn approx_bytes(&self) -> u64 {
        self.columns.iter().map(Column::approx_bytes).sum()
    }

    /// A new table containing `copies` back-to-back copies of this table
    /// (used to build the paper's `OpenAQ-25x` scale-up for timing runs).
    pub fn repeat(&self, copies: usize) -> Table {
        let mut b = TableBuilder::from_schema(self.schema.clone());
        b.reserve(self.num_rows * copies);
        for _ in 0..copies {
            for row in 0..self.num_rows {
                let values = self.row(row);
                b.push_row(&values).expect("schema-compatible row");
            }
        }
        b.finish()
    }

    /// A new table with `batch`'s rows appended after this table's rows.
    ///
    /// `batch` must have an identical schema. The result is byte-identical
    /// to building one table from the concatenated row stream: fixed-width
    /// columns concatenate, and string dictionaries re-intern the batch in
    /// row order, preserving first-occurrence code order. Tables stay
    /// immutable — ingestion replaces a catalog entry with the extended
    /// table, so row ids held by existing samples never dangle.
    pub fn extended(&self, batch: &Table) -> Result<Table> {
        if self.schema != *batch.schema() {
            return Err(TableError::invalid(format!(
                "cannot append a batch with schema {:?} to a table with schema {:?}",
                batch.schema(),
                self.schema
            )));
        }
        let mut columns = self.columns.clone();
        for (col, other) in columns.iter_mut().zip(batch.columns()) {
            col.extend_from(other)?;
        }
        Ok(Table { schema: self.schema.clone(), columns, num_rows: self.num_rows + batch.num_rows })
    }

    /// A new table containing only the rows with ids in `rows` (in order).
    pub fn take(&self, rows: &[usize]) -> Table {
        let mut b = TableBuilder::from_schema(self.schema.clone());
        b.reserve(rows.len());
        for &row in rows {
            let values = self.row(row);
            b.push_row(&values).expect("schema-compatible row");
        }
        b.finish()
    }
}

/// Incremental builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    num_rows: usize,
}

impl TableBuilder {
    /// Builder for a schema given as `(name, type)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Self {
        Self::from_schema(Schema::new(fields))
    }

    /// Builder for an existing schema.
    pub fn from_schema(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::new(f.dtype)).collect();
        TableBuilder { schema, columns, num_rows: 0 }
    }

    /// Pre-allocate capacity for `rows` additional rows.
    pub fn reserve(&mut self, rows: usize) {
        let dtypes: Vec<DataType> = self.schema.fields().iter().map(|f| f.dtype).collect();
        for (col, dtype) in self.columns.iter_mut().zip(dtypes) {
            if col.is_empty() {
                *col = Column::with_capacity(dtype, rows);
            }
        }
    }

    /// Append one row. Values must match the schema positionally.
    pub fn push_row(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(TableError::ArityMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (col, value) in self.columns.iter_mut().zip(values) {
            col.push(value)?;
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Rows pushed so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Finish building.
    pub fn finish(self) -> Table {
        Table { schema: self.schema, columns: self.columns, num_rows: self.num_rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn student_table() -> Table {
        let mut b = TableBuilder::new(&[
            ("major", DataType::Str),
            ("gpa", DataType::Float64),
            ("age", DataType::Int64),
        ]);
        for (major, gpa, age) in
            [("CS", 3.4, 25), ("CS", 3.1, 22), ("Math", 3.8, 24), ("EE", 3.5, 21)]
        {
            b.push_row(&[Value::str(major), Value::Float64(gpa), Value::Int64(age)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_read() {
        let t = student_table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.column_by_name("gpa").unwrap().f64_at(2), Some(3.8));
        assert_eq!(t.row(0), vec![Value::str("CS"), Value::Float64(3.4), Value::Int64(25)]);
    }

    #[test]
    fn approx_bytes_is_a_pure_function_of_the_data() {
        let t = student_table();
        // str: 4 codes × 4B + dict ("CS"+"Math"+"EE" = 8 string bytes +
        // 3 × 16B entry overhead) = 72; gpa: 4 × 8B; age: 4 × 8B.
        assert_eq!(t.approx_bytes(), 72 + 32 + 32);
        // Same data → same bytes, independent of build history.
        assert_eq!(t.take(&[0, 1, 2, 3]).approx_bytes(), t.approx_bytes());
        assert_eq!(TableBuilder::new(&[("a", DataType::Int64)]).finish().approx_bytes(), 0);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new(&[("a", DataType::Int64)]);
        let err = b.push_row(&[Value::Int64(1), Value::Int64(2)]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { expected: 1, found: 2 }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut b = TableBuilder::new(&[("a", DataType::Int64)]);
        assert!(b.push_row(&[Value::str("no")]).is_err());
    }

    #[test]
    fn missing_column_lookup() {
        let t = student_table();
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn repeat_scales_rows() {
        let t = student_table();
        let t3 = t.repeat(3);
        assert_eq!(t3.num_rows(), 12);
        assert_eq!(t3.row(4), t.row(0));
        assert_eq!(t3.row(11), t.row(3));
    }

    #[test]
    fn take_subset() {
        let t = student_table();
        let sub = t.take(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.row(0), t.row(2));
        assert_eq!(sub.row(1), t.row(0));
    }

    #[test]
    fn reserve_then_build() {
        let mut b = TableBuilder::new(&[("x", DataType::Float64)]);
        b.reserve(1000);
        for i in 0..1000 {
            b.push_row(&[Value::Float64(i as f64)]).unwrap();
        }
        assert_eq!(b.num_rows(), 1000);
        let t = b.finish();
        assert_eq!(t.column(0).f64_at(999), Some(999.0));
    }
}

//! Grouping-key encoding shared by the exact executor and the samplers.
//!
//! A [`GroupIndex`] assigns every row a dense group id for a list of grouping
//! expressions (the paper's "finest stratification" when the expressions are
//! the union of all group-by attribute sets), and can *project* those ids
//! onto any subset of the dimensions — the paper's `Π(c, A)` mapping from a
//! finest stratum `c` to the group of query `A` that contains it.

use std::sync::Arc;

use crate::exec::{self, ExecOptions, RowRange, CHUNK_ROWS};
use crate::expr::ScalarExpr;
use crate::fxhash::FxHashMap;
use crate::shard::ShardedTable;
use crate::table::Table;
use crate::types::Value;
use crate::Result;

/// One component of a group key. Unlike [`Value`], atoms are hashable and
/// totally ordered, because floats never appear in group keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyAtom {
    /// Integer component (also used for years, months, hours, bools).
    Int(i64),
    /// String component.
    Str(Arc<str>),
}

impl KeyAtom {
    /// Convert to a dynamic [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            KeyAtom::Int(v) => Value::Int64(*v),
            KeyAtom::Str(s) => Value::Str(Arc::clone(s)),
        }
    }
}

impl std::fmt::Display for KeyAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyAtom::Int(v) => write!(f, "{v}"),
            KeyAtom::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for KeyAtom {
    fn from(v: i64) -> Self {
        KeyAtom::Int(v)
    }
}

impl From<&str> for KeyAtom {
    fn from(s: &str) -> Self {
        KeyAtom::Str(Arc::from(s))
    }
}

/// Join key atoms with `|` for display.
pub fn key_display(key: &[KeyAtom]) -> String {
    let parts: Vec<String> = key.iter().map(|a| a.to_string()).collect();
    parts.join("|")
}

/// How a [`GroupIndex`] interns row key tuples into dense group ids.
///
/// Both strategies produce **byte-identical indexes** — per-row group ids,
/// first-occurrence key order, group sizes — so the choice is purely a
/// performance decision and never observable in query results. The hash
/// build interns tuples through a hash map in row order; the sort build
/// sorts row ids by key tuple and walks runs, which touches memory
/// sequentially and wins when the key count approaches the row count
/// (each hash insert would miss cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupStrategy {
    /// Intern key tuples through a hash map in row order.
    Hash,
    /// Sort row ids by key tuple and walk runs, then renumber runs into
    /// first-occurrence order.
    Sort,
}

impl GroupStrategy {
    /// Stable lower-case name, used in `EXPLAIN` output.
    pub fn name(&self) -> &'static str {
        match self {
            GroupStrategy::Hash => "hash",
            GroupStrategy::Sort => "sort",
        }
    }
}

impl std::fmt::Display for GroupStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata-only estimate of the number of distinct key tuples for
/// grouping `table` by `exprs` — no row scan, just dictionary sizes and
/// the ranges of calendar functions. `None` when any dimension's
/// cardinality can't be bounded without scanning (plain integer or
/// computed dimensions).
pub fn estimate_keys(table: &Table, exprs: &[ScalarExpr]) -> Option<u64> {
    let mut product: u64 = 1;
    for expr in exprs {
        let per_dim = match expr {
            ScalarExpr::Column(name) => {
                let column = table.column_by_name(name).ok()?;
                match column.dictionary() {
                    Some(dict) => (dict.len() as u64).max(1),
                    None => return None,
                }
            }
            ScalarExpr::Month(_) => 12,
            ScalarExpr::Day(_) => 31,
            ScalarExpr::Hour(_) => 24,
            ScalarExpr::Indicator { .. } => 2,
            ScalarExpr::Literal(_) => 1,
            _ => return None,
        };
        product = product.saturating_mul(per_dim);
    }
    Some(product)
}

/// Pick a [`GroupStrategy`] from row count and the (optional) key
/// estimate, returning the choice and a human-readable reason — exactly
/// what `EXPLAIN` reports. Sort wins when keys are dense relative to rows
/// (more than one key per 8 rows): run-walking then beats per-row hash
/// inserts that mostly miss cache. Set `CVOPT_GROUP_STRATEGY=hash|sort`
/// to force a strategy (results are identical either way — the override
/// exists so CI can pin both paths against each other).
pub fn choose_strategy(rows: usize, key_estimate: Option<u64>) -> (GroupStrategy, String) {
    if let Ok(forced) = std::env::var("CVOPT_GROUP_STRATEGY") {
        match forced.to_ascii_lowercase().as_str() {
            "hash" => return (GroupStrategy::Hash, "forced by CVOPT_GROUP_STRATEGY".into()),
            "sort" => return (GroupStrategy::Sort, "forced by CVOPT_GROUP_STRATEGY".into()),
            _ => {} // Unknown value: fall through to the heuristic.
        }
    }
    match key_estimate {
        None => (GroupStrategy::Hash, "key cardinality not known from metadata; hash build".into()),
        Some(keys) => {
            if keys as u128 * 8 > rows as u128 {
                (GroupStrategy::Sort, format!("≈{keys} keys over {rows} rows (dense); sort build"))
            } else {
                (GroupStrategy::Hash, format!("≈{keys} keys over {rows} rows (sparse); hash build"))
            }
        }
    }
}

/// Per-dimension encoding: dense `u32` code per row plus code → atom labels.
struct DimCodes {
    codes: Vec<u32>,
    labels: Vec<KeyAtom>,
}

/// What an interning kernel produces for a row range: per-row group ids
/// (local to the range), group code tuples in first-occurrence order, and
/// group sizes.
type InternOut = (Vec<u32>, Vec<Vec<u32>>, Vec<u64>);

/// An interning kernel: [`GroupIndex::intern_rows`] or
/// [`GroupIndex::intern_rows_sorted`], which produce identical output.
type InternKernel = fn(&[DimCodes], RowRange) -> InternOut;

fn dim_type_error(expr: &ScalarExpr) -> crate::error::TableError {
    crate::error::TableError::invalid(format!(
        "grouping expression {expr} is not integer-like or string"
    ))
}

fn encode_dimension(table: &Table, expr: &ScalarExpr, options: &ExecOptions) -> Result<DimCodes> {
    let bound = expr.bind(table)?;
    let n = table.num_rows();
    if bound.is_plain_str() {
        // Dictionary codes are already dense distinct-value codes.
        let codes = bound.column().str_codes().expect("plain str column").to_vec();
        let dict = bound.column().dictionary().expect("plain str column");
        let labels = (0..dict.len() as u32).map(|c| KeyAtom::Str(dict.get_arc(c))).collect();
        return Ok(DimCodes { codes, labels });
    }
    if options.threads() <= 1 || n <= CHUNK_ROWS {
        // Integer-like dimension: intern values to dense codes in
        // first-seen order.
        let mut map: FxHashMap<i64, u32> = FxHashMap::default();
        let mut labels = Vec::new();
        let mut codes = Vec::with_capacity(n);
        for row in 0..n {
            let v = bound.i64_at(row).ok_or_else(|| dim_type_error(expr))?;
            let next = labels.len() as u32;
            let code = *map.entry(v).or_insert_with(|| {
                labels.push(KeyAtom::Int(v));
                next
            });
            codes.push(code);
        }
        return Ok(DimCodes { codes, labels });
    }

    // Parallel path: per-partition interning, then an ordered merge that
    // reproduces the sequential first-seen code order exactly (a value's
    // global code is assigned at its earliest partition, and partitions are
    // merged in row order).
    let partials: Result<Vec<(Vec<u32>, Vec<i64>)>> = exec::run_partitioned(
        n,
        options,
        |_, range: RowRange| {
            let mut map: FxHashMap<i64, u32> = FxHashMap::default();
            let mut local_labels: Vec<i64> = Vec::new();
            let mut local_codes = Vec::with_capacity(range.len());
            for row in range.rows() {
                let v = bound.i64_at(row).ok_or_else(|| dim_type_error(expr))?;
                let next = local_labels.len() as u32;
                let code = *map.entry(v).or_insert_with(|| {
                    local_labels.push(v);
                    next
                });
                local_codes.push(code);
            }
            Ok((local_codes, local_labels))
        },
        |parts| parts.into_iter().collect(),
    );
    let partials = partials?;

    let mut global: FxHashMap<i64, u32> = FxHashMap::default();
    let mut labels: Vec<KeyAtom> = Vec::new();
    let translations: Vec<Vec<u32>> = partials
        .iter()
        .map(|(_, local_labels)| {
            local_labels
                .iter()
                .map(|&v| {
                    let next = labels.len() as u32;
                    *global.entry(v).or_insert_with(|| {
                        labels.push(KeyAtom::Int(v));
                        next
                    })
                })
                .collect()
        })
        .collect();

    let mut codes = vec![0u32; n];
    exec::for_each_chunk_mut(&mut codes, CHUNK_ROWS, options, |i, out| {
        for (slot, &local) in out.iter_mut().zip(&partials[i].0) {
            *slot = translations[i][local as usize];
        }
    });
    Ok(DimCodes { codes, labels })
}

/// Dense per-row group ids for a list of grouping expressions.
#[derive(Debug, Clone)]
pub struct GroupIndex {
    dim_names: Vec<String>,
    row_groups: Vec<u32>,
    group_keys: Vec<Vec<KeyAtom>>,
    group_sizes: Vec<u64>,
}

impl GroupIndex {
    /// Build the index over all rows of `table`, using one worker per
    /// available core (see [`GroupIndex::build_with`]).
    ///
    /// With an empty expression list every row maps to the single group with
    /// an empty key (a full-table aggregate).
    pub fn build(table: &Table, exprs: &[ScalarExpr]) -> Result<GroupIndex> {
        Self::build_with(table, exprs, &ExecOptions::default())
    }

    /// Build the index with explicit execution options.
    ///
    /// The parallel path interns group keys per partition and merges the
    /// partitions **in row order**, so group ids follow first-occurrence
    /// order and the result is identical to the sequential build for any
    /// thread count.
    pub fn build_with(
        table: &Table,
        exprs: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<GroupIndex> {
        let (strategy, _) = Self::strategy_for(table, exprs);
        Self::build_with_strategy(table, exprs, options, strategy)
    }

    /// The [`GroupStrategy`] (and its reason) that [`GroupIndex::build_with`]
    /// will use for this table and dimension list — what `EXPLAIN` reports.
    pub fn strategy_for(table: &Table, exprs: &[ScalarExpr]) -> (GroupStrategy, String) {
        choose_strategy(table.num_rows(), estimate_keys(table, exprs))
    }

    /// Build the index with the sort-based interning strategy. The result
    /// is byte-identical to the hash build (see [`GroupStrategy`]); this
    /// entry point exists for the equivalence tests and benchmarks.
    pub fn build_sorted(
        table: &Table,
        exprs: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<GroupIndex> {
        Self::build_with_strategy(table, exprs, options, GroupStrategy::Sort)
    }

    /// Build the index with an explicit interning strategy (see
    /// [`GroupIndex::build_with`] for the determinism contract, which holds
    /// for either strategy).
    pub fn build_with_strategy(
        table: &Table,
        exprs: &[ScalarExpr],
        options: &ExecOptions,
        strategy: GroupStrategy,
    ) -> Result<GroupIndex> {
        let dim_names = exprs.iter().map(|e| e.display_name()).collect();
        let n = table.num_rows();
        if exprs.is_empty() {
            return Ok(GroupIndex {
                dim_names,
                row_groups: vec![0; n],
                group_keys: vec![Vec::new()],
                group_sizes: vec![n as u64],
            });
        }
        let dims: Vec<DimCodes> =
            exprs.iter().map(|e| encode_dimension(table, e, options)).collect::<Result<_>>()?;

        let intern: InternKernel = match strategy {
            GroupStrategy::Hash => Self::intern_rows,
            GroupStrategy::Sort => Self::intern_rows_sorted,
        };
        let (row_groups, group_codes, group_sizes) = if options.threads() <= 1 || n <= CHUNK_ROWS {
            intern(&dims, RowRange { start: 0, end: n })
        } else {
            Self::intern_rows_partitioned(&dims, n, options, intern)
        };

        let group_keys = group_codes
            .iter()
            .map(|codes| {
                codes
                    .iter()
                    .zip(&dims)
                    .map(|(&c, d)| d.labels[c as usize].clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        Ok(GroupIndex { dim_names, row_groups, group_keys, group_sizes })
    }

    /// Build the index over a [`ShardedTable`]'s logical row space.
    ///
    /// Each shard is indexed independently with [`GroupIndex::build_with`]
    /// (a shard never sees its siblings' dictionaries or interning state);
    /// the per-shard indexes are then merged **in shard order**, which is
    /// global row order, so a group's global id is assigned at its earliest
    /// occurrence across the concatenation. The result — per-row group ids,
    /// first-occurrence key order, group sizes — is **identical to building
    /// over the concatenated single table**, for any shard layout and any
    /// thread count. (Every merge here is integral, so this holds exactly,
    /// not just up to rounding.)
    pub fn build_sharded(
        table: &ShardedTable,
        exprs: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<GroupIndex> {
        let dim_names: Vec<String> = exprs.iter().map(|e| e.display_name()).collect();
        let n = table.num_rows();
        if exprs.is_empty() {
            return Ok(GroupIndex {
                dim_names,
                row_groups: vec![0; n],
                group_keys: vec![Vec::new()],
                group_sizes: vec![n as u64],
            });
        }
        // Index each shard independently. Parallelism can live at the
        // shard level (many small shards: one worker per shard, builds
        // sequential inside) or inside each build (few big shards: shards
        // in order, partitions parallel); both levels are thread-count
        // invariant, so the choice affects scheduling only, never results.
        let locals: Vec<GroupIndex> = if table.num_shards() >= options.threads() {
            exec::run_indexed(table.num_shards(), options, |s| {
                Self::build_with(table.shard(s), exprs, &ExecOptions::sequential())
            })
            .into_iter()
            .collect::<Result<_>>()?
        } else {
            table
                .shards()
                .iter()
                .map(|shard| Self::build_with(shard, exprs, options))
                .collect::<Result<_>>()?
        };

        Ok(Self::merge_shard_locals(dim_names, &locals, n))
    }

    /// Merge shard-local indexes **in shard order** into one index over the
    /// concatenated row space. Shard-local first-seen order concatenated
    /// over shards equals global first-seen order, so the result is
    /// identical to building over the concatenated single table. Shared by
    /// [`GroupIndex::build_sharded`] and the remote scatter-window merge.
    pub(crate) fn merge_shard_locals(
        dim_names: Vec<String>,
        locals: &[GroupIndex],
        n: usize,
    ) -> GroupIndex {
        let mut intern: FxHashMap<Vec<KeyAtom>, u32> = FxHashMap::default();
        let mut group_keys: Vec<Vec<KeyAtom>> = Vec::new();
        let mut group_sizes: Vec<u64> = Vec::new();
        let translations: Vec<Vec<u32>> = locals
            .iter()
            .map(|local| {
                (0..local.num_groups() as u32)
                    .map(|g| {
                        let key = local.key(g);
                        let gid = match intern.get(key) {
                            Some(&gid) => gid,
                            None => {
                                let gid = group_keys.len() as u32;
                                intern.insert(key.to_vec(), gid);
                                group_keys.push(key.to_vec());
                                group_sizes.push(0);
                                gid
                            }
                        };
                        group_sizes[gid as usize] += local.size(g);
                        gid
                    })
                    .collect()
            })
            .collect();

        let mut row_groups = Vec::with_capacity(n);
        for (local, translation) in locals.iter().zip(&translations) {
            row_groups.extend(local.row_groups().iter().map(|&g| translation[g as usize]));
        }
        GroupIndex { dim_names, row_groups, group_keys, group_sizes }
    }

    /// Merge independently-built indexes over consecutive row blocks into
    /// one index over their concatenation — the public face of the ordered
    /// merge behind [`GroupIndex::build_sharded`], used by incremental
    /// ingestion to fold a batch-local index into a table's maintained
    /// index without rescanning old rows.
    ///
    /// `locals` are indexes over consecutive blocks of the combined row
    /// space, in row order; every local must stratify by the same
    /// dimensions. Because group ids follow first-occurrence order, the
    /// result is **identical to building one index over the concatenated
    /// rows**: old groups keep their ids, groups first seen in a later
    /// block take the next ids.
    pub fn merge_locals(locals: &[GroupIndex]) -> Result<GroupIndex> {
        let Some(first) = locals.first() else {
            return Err(crate::error::TableError::invalid(
                "merge_locals needs at least one local index",
            ));
        };
        for (i, local) in locals.iter().enumerate().skip(1) {
            if local.dim_names != first.dim_names {
                return Err(crate::error::TableError::invalid(format!(
                    "local index {i} stratifies by {:?}, local 0 by {:?}",
                    local.dim_names, first.dim_names
                )));
            }
        }
        let n = locals.iter().map(|l| l.row_groups.len()).sum();
        Ok(Self::merge_shard_locals(first.dim_names.clone(), locals, n))
    }

    /// Reassemble an index from its parts, validating internal consistency.
    /// This is the decode side of shipping a scatter window over the wire;
    /// every accessor invariant (`group_of` in range, keys and sizes
    /// aligned) is checked here so a corrupt frame cannot panic later.
    pub fn from_parts(
        dim_names: Vec<String>,
        row_groups: Vec<u32>,
        group_keys: Vec<Vec<KeyAtom>>,
        group_sizes: Vec<u64>,
    ) -> Result<GroupIndex> {
        if group_keys.len() != group_sizes.len() {
            return Err(crate::error::TableError::invalid(format!(
                "group index parts disagree: {} keys vs {} sizes",
                group_keys.len(),
                group_sizes.len()
            )));
        }
        let num_groups = group_keys.len() as u32;
        if let Some(&g) = row_groups.iter().find(|&&g| g >= num_groups) {
            return Err(crate::error::TableError::invalid(format!(
                "group index parts name group {g} but only {num_groups} groups exist"
            )));
        }
        Ok(GroupIndex { dim_names, row_groups, group_keys, group_sizes })
    }

    /// Intern the rows of `range` against `dims`: per-row group ids (local
    /// to the range), group code tuples in first-occurrence order, and
    /// group sizes.
    fn intern_rows(dims: &[DimCodes], range: RowRange) -> InternOut {
        let mut row_groups = Vec::with_capacity(range.len());
        let mut group_codes: Vec<Vec<u32>> = Vec::new();
        let mut group_sizes: Vec<u64> = Vec::new();

        if dims.len() <= 2 {
            // Fast path: pack up to two codes into a u64 key.
            let mut intern: FxHashMap<u64, u32> = FxHashMap::default();
            for row in range.rows() {
                let packed = if dims.len() == 1 {
                    u64::from(dims[0].codes[row])
                } else {
                    (u64::from(dims[0].codes[row]) << 32) | u64::from(dims[1].codes[row])
                };
                let next = group_codes.len() as u32;
                let gid = *intern.entry(packed).or_insert_with(|| {
                    group_codes.push(dims.iter().map(|d| d.codes[row]).collect());
                    group_sizes.push(0);
                    next
                });
                group_sizes[gid as usize] += 1;
                row_groups.push(gid);
            }
        } else {
            let mut intern: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
            let mut scratch: Vec<u32> = Vec::with_capacity(dims.len());
            for row in range.rows() {
                scratch.clear();
                scratch.extend(dims.iter().map(|d| d.codes[row]));
                let gid = match intern.get(scratch.as_slice()) {
                    Some(&gid) => gid,
                    None => {
                        let gid = group_codes.len() as u32;
                        intern.insert(scratch.clone().into_boxed_slice(), gid);
                        group_codes.push(scratch.clone());
                        group_sizes.push(0);
                        gid
                    }
                };
                group_sizes[gid as usize] += 1;
                row_groups.push(gid);
            }
        }
        (row_groups, group_codes, group_sizes)
    }

    /// Sort-based interning of `range` against `dims`: identical output to
    /// [`Self::intern_rows`] — group ids in first-occurrence order — but
    /// computed by sorting row ids by key tuple, walking runs of equal
    /// keys, and renumbering the runs by their earliest row.
    fn intern_rows_sorted(dims: &[DimCodes], range: RowRange) -> InternOut {
        let len = range.len();
        let base = range.start;
        // Run id per local row, plus (first local row, size) per run, in
        // sorted-key order.
        let mut run_of = vec![0u32; len];
        let mut runs: Vec<(u32, u64)> = Vec::new();

        if dims.len() <= 2 {
            let packed = |row: usize| {
                if dims.len() == 1 {
                    u64::from(dims[0].codes[row])
                } else {
                    (u64::from(dims[0].codes[row]) << 32) | u64::from(dims[1].codes[row])
                }
            };
            let mut order: Vec<(u64, u32)> =
                range.rows().map(|row| (packed(row), (row - base) as u32)).collect();
            order.sort_unstable();
            let mut prev: Option<u64> = None;
            for &(key, local) in &order {
                if prev != Some(key) {
                    runs.push((local, 0));
                    prev = Some(key);
                }
                let r = runs.len() - 1;
                runs[r].1 += 1;
                run_of[local as usize] = r as u32;
            }
        } else {
            let tuple = |row: usize| dims.iter().map(|d| d.codes[row]).collect::<Vec<u32>>();
            let mut order: Vec<u32> = (0..len as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let (a, b) = (a as usize + base, b as usize + base);
                dims.iter()
                    .map(|d| d.codes[a].cmp(&d.codes[b]))
                    .find(|o| o.is_ne())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut prev: Option<Vec<u32>> = None;
            for &local in &order {
                let key = tuple(local as usize + base);
                if prev.as_ref() != Some(&key) {
                    runs.push((local, 0));
                    prev = Some(key);
                }
                let r = runs.len() - 1;
                runs[r].1 += 1;
                run_of[local as usize] = r as u32;
            }
        }

        // Renumber runs into first-occurrence order. Within a run the sort
        // is ascending by row, so a run's recorded first row is its
        // earliest, and ordering runs by it reproduces the hash build's
        // group id assignment exactly.
        let mut perm: Vec<u32> = (0..runs.len() as u32).collect();
        perm.sort_unstable_by_key(|&r| runs[r as usize].0);
        let mut gid_of_run = vec![0u32; runs.len()];
        for (gid, &r) in perm.iter().enumerate() {
            gid_of_run[r as usize] = gid as u32;
        }

        let row_groups: Vec<u32> = run_of.iter().map(|&r| gid_of_run[r as usize]).collect();
        let group_codes: Vec<Vec<u32>> = perm
            .iter()
            .map(|&r| {
                let first = runs[r as usize].0 as usize + base;
                dims.iter().map(|d| d.codes[first]).collect()
            })
            .collect();
        let group_sizes: Vec<u64> = perm.iter().map(|&r| runs[r as usize].1).collect();
        (row_groups, group_codes, group_sizes)
    }

    /// Partitioned interning with a deterministic merge. Each partition
    /// interns locally with the strategy's kernel ([`Self::intern_rows`] or
    /// [`Self::intern_rows_sorted`], which produce identical output);
    /// partitions are then merged in row order, so a group's global id is
    /// assigned at its earliest occurrence — identical to the sequential
    /// scan — and per-row ids are rewritten through the per-partition
    /// translation tables in a second parallel pass.
    fn intern_rows_partitioned(
        dims: &[DimCodes],
        n: usize,
        options: &ExecOptions,
        intern_kernel: InternKernel,
    ) -> InternOut {
        let partials =
            exec::run_partitioned(n, options, |_, range| intern_kernel(dims, range), |parts| parts);

        let mut intern: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
        let mut group_codes: Vec<Vec<u32>> = Vec::new();
        let mut group_sizes: Vec<u64> = Vec::new();
        let translations: Vec<Vec<u32>> = partials
            .iter()
            .map(|(_, local_codes, local_sizes)| {
                local_codes
                    .iter()
                    .zip(local_sizes)
                    .map(|(codes, &size)| {
                        let gid = match intern.get(codes.as_slice()) {
                            Some(&gid) => gid,
                            None => {
                                let gid = group_codes.len() as u32;
                                intern.insert(codes.clone().into_boxed_slice(), gid);
                                group_codes.push(codes.clone());
                                group_sizes.push(0);
                                gid
                            }
                        };
                        group_sizes[gid as usize] += size;
                        gid
                    })
                    .collect()
            })
            .collect();

        let mut row_groups = vec![0u32; n];
        exec::for_each_chunk_mut(&mut row_groups, CHUNK_ROWS, options, |i, out| {
            for (slot, &local) in out.iter_mut().zip(&partials[i].0) {
                *slot = translations[i][local as usize];
            }
        });
        (row_groups, group_codes, group_sizes)
    }

    /// Names of the grouping dimensions.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.dim_names.len()
    }

    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.group_keys.len()
    }

    /// Number of rows indexed.
    pub fn num_rows(&self) -> usize {
        self.row_groups.len()
    }

    /// Group id of `row`.
    #[inline]
    pub fn group_of(&self, row: usize) -> u32 {
        self.row_groups[row]
    }

    /// Per-row group ids.
    pub fn row_groups(&self) -> &[u32] {
        &self.row_groups
    }

    /// Key of group `gid`.
    pub fn key(&self, gid: u32) -> &[KeyAtom] {
        &self.group_keys[gid as usize]
    }

    /// Number of rows in group `gid` (unfiltered).
    pub fn size(&self, gid: u32) -> u64 {
        self.group_sizes[gid as usize]
    }

    /// Per-group sizes (unfiltered).
    pub fn sizes(&self) -> &[u64] {
        &self.group_sizes
    }

    /// Project groups onto a subset of dimensions (`dims` are indices into
    /// the dimension list, in the order the coarse grouping should use).
    ///
    /// Returns the `Π` mapping: for each fine group id, the coarse group id
    /// containing it, along with the coarse keys.
    pub fn project(&self, dims: &[usize]) -> GroupProjection {
        assert!(dims.iter().all(|&d| d < self.num_dims()), "projection dim out of range");
        let mut intern: FxHashMap<Vec<KeyAtom>, u32> = FxHashMap::default();
        let mut coarse_keys: Vec<Vec<KeyAtom>> = Vec::new();
        let mut fine_to_coarse = Vec::with_capacity(self.num_groups());
        for key in &self.group_keys {
            let sub: Vec<KeyAtom> = dims.iter().map(|&d| key[d].clone()).collect();
            let next = coarse_keys.len() as u32;
            let cid = *intern.entry(sub.clone()).or_insert_with(|| {
                coarse_keys.push(sub);
                next
            });
            fine_to_coarse.push(cid);
        }
        let dim_names = dims.iter().map(|&d| self.dim_names[d].clone()).collect();
        GroupProjection { dim_names, fine_to_coarse, coarse_keys }
    }
}

/// The result of projecting a [`GroupIndex`] onto a dimension subset.
#[derive(Debug, Clone)]
pub struct GroupProjection {
    dim_names: Vec<String>,
    fine_to_coarse: Vec<u32>,
    coarse_keys: Vec<Vec<KeyAtom>>,
}

impl GroupProjection {
    /// Names of the coarse dimensions.
    pub fn dim_names(&self) -> &[String] {
        &self.dim_names
    }

    /// Number of coarse groups.
    pub fn num_groups(&self) -> usize {
        self.coarse_keys.len()
    }

    /// Coarse group id containing fine group `gid` (the paper's `Π(c, A)`).
    #[inline]
    pub fn coarse_of(&self, fine_gid: u32) -> u32 {
        self.fine_to_coarse[fine_gid as usize]
    }

    /// Mapping from every fine group to its coarse group.
    pub fn fine_to_coarse(&self) -> &[u32] {
        &self.fine_to_coarse
    }

    /// Key of coarse group `cid`.
    pub fn key(&self, cid: u32) -> &[KeyAtom] {
        &self.coarse_keys[cid as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::time::epoch_seconds;
    use crate::types::{DataType, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("major", DataType::Str),
            ("year", DataType::Int64),
            ("t", DataType::Timestamp),
        ]);
        let rows = [
            ("CS", 1, 2017),
            ("CS", 2, 2017),
            ("EE", 1, 2018),
            ("CS", 1, 2018),
            ("EE", 2, 2017),
            ("EE", 1, 2018),
        ];
        for (m, y, ty) in rows {
            b.push_row(&[
                Value::str(m),
                Value::Int64(y),
                Value::Timestamp(epoch_seconds(ty, 1, 1, 0, 0, 0)),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn single_string_dim() {
        let t = table();
        let gi = GroupIndex::build(&t, &[ScalarExpr::col("major")]).unwrap();
        assert_eq!(gi.num_groups(), 2);
        assert_eq!(gi.key(0), &[KeyAtom::from("CS")]);
        assert_eq!(gi.key(1), &[KeyAtom::from("EE")]);
        assert_eq!(gi.sizes(), &[3, 3]);
        assert_eq!(gi.group_of(0), 0);
        assert_eq!(gi.group_of(2), 1);
    }

    #[test]
    fn single_int_dim() {
        let t = table();
        let gi = GroupIndex::build(&t, &[ScalarExpr::col("year")]).unwrap();
        assert_eq!(gi.num_groups(), 2);
        assert_eq!(gi.key(0), &[KeyAtom::Int(1)]);
        assert_eq!(gi.sizes(), &[4, 2]);
    }

    #[test]
    fn timestamp_year_dim() {
        let t = table();
        let gi = GroupIndex::build(&t, &[ScalarExpr::year("t")]).unwrap();
        assert_eq!(gi.num_groups(), 2);
        assert_eq!(gi.key(0), &[KeyAtom::Int(2017)]);
        assert_eq!(gi.sizes(), &[3, 3]);
    }

    #[test]
    fn two_dims_packed() {
        let t = table();
        let gi =
            GroupIndex::build(&t, &[ScalarExpr::col("major"), ScalarExpr::col("year")]).unwrap();
        assert_eq!(gi.num_groups(), 4);
        let keys: Vec<String> = (0..4).map(|g| key_display(gi.key(g))).collect();
        assert_eq!(keys, vec!["CS|1", "CS|2", "EE|1", "EE|2"]);
        assert_eq!(gi.sizes(), &[2, 1, 2, 1]);
    }

    #[test]
    fn three_dims_general_path() {
        let t = table();
        let gi = GroupIndex::build(
            &t,
            &[ScalarExpr::col("major"), ScalarExpr::col("year"), ScalarExpr::year("t")],
        )
        .unwrap();
        assert_eq!(gi.num_groups(), 5);
        let total: u64 = gi.sizes().iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn empty_dims_full_table() {
        let t = table();
        let gi = GroupIndex::build(&t, &[]).unwrap();
        assert_eq!(gi.num_groups(), 1);
        assert!(gi.key(0).is_empty());
        assert_eq!(gi.size(0), 6);
        assert!(gi.row_groups().iter().all(|&g| g == 0));
    }

    #[test]
    fn projection_to_first_dim() {
        let t = table();
        let gi =
            GroupIndex::build(&t, &[ScalarExpr::col("major"), ScalarExpr::col("year")]).unwrap();
        let proj = gi.project(&[0]);
        assert_eq!(proj.num_groups(), 2);
        // Fine groups CS|1, CS|2 → CS; EE|1, EE|2 → EE.
        assert_eq!(proj.coarse_of(0), proj.coarse_of(1));
        assert_eq!(proj.coarse_of(2), proj.coarse_of(3));
        assert_ne!(proj.coarse_of(0), proj.coarse_of(2));
        assert_eq!(proj.key(proj.coarse_of(0)), &[KeyAtom::from("CS")]);
    }

    #[test]
    fn projection_to_empty_dims() {
        let t = table();
        let gi = GroupIndex::build(&t, &[ScalarExpr::col("major")]).unwrap();
        let proj = gi.project(&[]);
        assert_eq!(proj.num_groups(), 1);
        assert!(proj.fine_to_coarse().iter().all(|&c| c == 0));
    }

    #[test]
    fn projection_reorders_dims() {
        let t = table();
        let gi =
            GroupIndex::build(&t, &[ScalarExpr::col("major"), ScalarExpr::col("year")]).unwrap();
        let proj = gi.project(&[1, 0]);
        assert_eq!(proj.dim_names(), &["year".to_string(), "major".to_string()]);
        assert_eq!(proj.num_groups(), 4);
        assert_eq!(proj.key(proj.coarse_of(0)), &[KeyAtom::Int(1), KeyAtom::from("CS")]);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Enough rows to span several partitions, with int, string and
        // timestamp-function dimensions, so both the packed and general
        // interning paths and the parallel dimension encoder are exercised.
        let n = 3 * crate::exec::CHUNK_ROWS + 4321;
        let mut b = TableBuilder::new(&[
            ("s", DataType::Str),
            ("i", DataType::Int64),
            ("t", DataType::Timestamp),
        ]);
        let mut state = 88172645463325252u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b.push_row(&[
                Value::str(format!("s{}", state % 97)),
                Value::Int64((state >> 8) as i64 % 53),
                Value::Timestamp(epoch_seconds(2015 + (state % 7) as i32, 1, 1, 0, 0, 0)),
            ])
            .unwrap();
        }
        let t = b.finish();
        for exprs in [
            vec![ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i"), ScalarExpr::year("t")],
        ] {
            let seq = GroupIndex::build_with(&t, &exprs, &ExecOptions::sequential()).unwrap();
            for threads in [2usize, 8] {
                let par = GroupIndex::build_with(&t, &exprs, &ExecOptions::new(threads)).unwrap();
                assert_eq!(par.row_groups(), seq.row_groups(), "threads = {threads}");
                assert_eq!(par.sizes(), seq.sizes());
                assert_eq!(par.num_groups(), seq.num_groups());
                for g in 0..seq.num_groups() as u32 {
                    assert_eq!(par.key(g), seq.key(g));
                }
            }
        }
    }

    #[test]
    fn sharded_build_matches_unsharded() {
        // Mixed dimension kinds, shard boundaries that split dictionary
        // value runs, and an empty shard in the middle.
        let n = 5000;
        let mut b = TableBuilder::new(&[("s", DataType::Str), ("i", DataType::Int64)]);
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b.push_row(&[
                Value::str(format!("s{}", state % 31)),
                Value::Int64((state % 17) as i64),
            ])
            .unwrap();
        }
        let t = b.finish();
        let exprs = [ScalarExpr::col("s"), ScalarExpr::col("i")];
        let reference = GroupIndex::build_with(&t, &exprs, &ExecOptions::sequential()).unwrap();

        let empty = TableBuilder::from_schema(t.schema().clone()).finish();
        let sharded = ShardedTable::from_tables(vec![
            t.take(&(0..1234).collect::<Vec<_>>()),
            empty,
            t.take(&(1234..5000).collect::<Vec<_>>()),
        ])
        .unwrap();
        for threads in [1usize, 4] {
            let got =
                GroupIndex::build_sharded(&sharded, &exprs, &ExecOptions::new(threads)).unwrap();
            assert_eq!(got.row_groups(), reference.row_groups(), "threads {threads}");
            assert_eq!(got.sizes(), reference.sizes());
            for g in 0..reference.num_groups() as u32 {
                assert_eq!(got.key(g), reference.key(g));
            }
        }
    }

    #[test]
    fn sharded_build_empty_exprs_and_empty_table() {
        let t = table();
        let sharded = ShardedTable::split(&t, 3).unwrap();
        let gi = GroupIndex::build_sharded(&sharded, &[], &ExecOptions::sequential()).unwrap();
        assert_eq!(gi.num_groups(), 1);
        assert_eq!(gi.size(0), 6);
        assert!(gi.row_groups().iter().all(|&g| g == 0));
    }

    #[test]
    fn key_display_joins() {
        assert_eq!(key_display(&[KeyAtom::from("VN"), KeyAtom::Int(2018)]), "VN|2018");
        assert_eq!(key_display(&[]), "");
    }

    #[test]
    fn sorted_build_matches_hash_build() {
        // Same matrix as parallel_build_matches_sequential, but pinning the
        // sort-based interner against the hash interner: the two strategies
        // must produce byte-identical indexes for every dimension shape and
        // thread count.
        let n = 2 * crate::exec::CHUNK_ROWS + 999;
        let mut b = TableBuilder::new(&[
            ("s", DataType::Str),
            ("i", DataType::Int64),
            ("t", DataType::Timestamp),
        ]);
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b.push_row(&[
                Value::str(format!("s{}", state % 61)),
                Value::Int64((state >> 5) as i64 % 37),
                Value::Timestamp(epoch_seconds(2015 + (state % 5) as i32, 1, 1, 0, 0, 0)),
            ])
            .unwrap();
        }
        let t = b.finish();
        for exprs in [
            vec![ScalarExpr::col("s")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i"), ScalarExpr::year("t")],
        ] {
            for threads in [1usize, 2, 8] {
                let opts = ExecOptions::new(threads);
                let hash = GroupIndex::build_with_strategy(&t, &exprs, &opts, GroupStrategy::Hash)
                    .unwrap();
                let sort = GroupIndex::build_sorted(&t, &exprs, &opts).unwrap();
                assert_eq!(sort.row_groups(), hash.row_groups(), "threads = {threads}");
                assert_eq!(sort.sizes(), hash.sizes());
                for g in 0..hash.num_groups() as u32 {
                    assert_eq!(sort.key(g), hash.key(g));
                }
            }
        }
    }

    #[test]
    fn sorted_build_edge_cases() {
        // Empty table, single row, and an all-equal-keys table.
        let empty = TableBuilder::new(&[("s", DataType::Str)]).finish();
        let gi =
            GroupIndex::build_sorted(&empty, &[ScalarExpr::col("s")], &ExecOptions::sequential())
                .unwrap();
        assert_eq!(gi.num_groups(), 0);
        assert!(gi.row_groups().is_empty());

        let mut b = TableBuilder::new(&[("s", DataType::Str)]);
        for _ in 0..100 {
            b.push_row(&[Value::str("only")]).unwrap();
        }
        let t = b.finish();
        let gi =
            GroupIndex::build_sorted(&t, &[ScalarExpr::col("s")], &ExecOptions::new(4)).unwrap();
        assert_eq!(gi.num_groups(), 1);
        assert_eq!(gi.size(0), 100);
    }

    #[test]
    fn estimate_keys_from_metadata() {
        let t = table(); // major: 2 dict entries; year: Int64; t: Timestamp
        assert_eq!(estimate_keys(&t, &[ScalarExpr::col("major")]), Some(2));
        assert_eq!(estimate_keys(&t, &[ScalarExpr::col("year")]), None);
        assert_eq!(
            estimate_keys(&t, &[ScalarExpr::col("major"), ScalarExpr::month("t")]),
            Some(24)
        );
        assert_eq!(estimate_keys(&t, &[ScalarExpr::hour("t")]), Some(24));
        assert_eq!(estimate_keys(&t, &[]), Some(1));
        assert_eq!(estimate_keys(&t, &[ScalarExpr::year("t")]), None);
    }

    #[test]
    fn strategy_heuristic_prefers_sort_for_dense_keys() {
        let (s, reason) = choose_strategy(1000, Some(2));
        assert_eq!(s, GroupStrategy::Hash);
        assert!(reason.contains("sparse"), "{reason}");
        let (s, reason) = choose_strategy(1000, Some(500));
        assert_eq!(s, GroupStrategy::Sort);
        assert!(reason.contains("dense"), "{reason}");
        let (s, reason) = choose_strategy(1000, None);
        assert_eq!(s, GroupStrategy::Hash);
        assert!(reason.contains("not known"), "{reason}");
        assert_eq!(GroupStrategy::Hash.name(), "hash");
        assert_eq!(GroupStrategy::Sort.to_string(), "sort");
    }
}

//! Table schemas.

use crate::error::TableError;
use crate::types::DataType;
use crate::Result;

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// New field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Schema from `(name, type)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Self {
        Schema { fields: fields.iter().map(|(n, t)| Field::new(*n, *t)).collect() }
    }

    /// Schema from owned fields.
    pub fn from_fields(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Position of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// Type of the column named `name`.
    pub fn type_of(&self, name: &str) -> Result<DataType> {
        Ok(self.fields[self.index_of(name)?].dtype)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(&[
            ("country", DataType::Str),
            ("value", DataType::Float64),
            ("local_time", DataType::Timestamp),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = sample();
        assert_eq!(s.index_of("country").unwrap(), 0);
        assert_eq!(s.index_of("local_time").unwrap(), 2);
    }

    #[test]
    fn index_of_missing_errors() {
        let s = sample();
        assert!(matches!(s.index_of("nope"), Err(TableError::ColumnNotFound(_))));
    }

    #[test]
    fn type_of() {
        let s = sample();
        assert_eq!(s.type_of("value").unwrap(), DataType::Float64);
        assert_eq!(s.type_of("country").unwrap(), DataType::Str);
    }

    #[test]
    fn names_in_order() {
        assert_eq!(sample().names(), vec!["country", "value", "local_time"]);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}

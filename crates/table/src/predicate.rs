//! Predicate AST and evaluation.
//!
//! Predicates are resolved against a table once ([`Predicate::bind`]) and can
//! then be evaluated row-at-a-time or in bulk into a [`Bitmap`]. String
//! comparisons are resolved to dictionary codes at bind time, so the per-row
//! work for `country = 'VN'` is a single integer compare.

use crate::bitmap::Bitmap;
use crate::error::TableError;
use crate::expr::{BoundExpr, ScalarExpr};
use crate::table::Table;
use crate::types::Value;
use crate::Result;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering between left and right.
    #[inline]
    pub fn evaluate(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Apply to two floats (total order).
    #[inline]
    pub fn evaluate_f64(self, left: f64, right: f64) -> bool {
        self.evaluate(left.total_cmp(&right))
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A filter predicate over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (no filtering).
    True,
    /// `expr OP literal`.
    Cmp {
        /// Left-hand expression.
        expr: ScalarExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Value,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: ScalarExpr,
        /// Inclusive lower bound.
        low: Value,
        /// Inclusive upper bound.
        high: Value,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: ScalarExpr,
        /// Allowed values.
        values: Vec<Value>,
    },
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column OP literal` convenience constructor.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp { expr: ScalarExpr::col(column), op, value: value.into() }
    }

    /// `expr OP literal` convenience constructor.
    pub fn cmp_expr(expr: ScalarExpr, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp { expr, op, value: value.into() }
    }

    /// `expr BETWEEN low AND high` convenience constructor.
    pub fn between(expr: ScalarExpr, low: impl Into<Value>, high: impl Into<Value>) -> Self {
        Predicate::Between { expr, low: low.into(), high: high.into() }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Resolve column names and string literals against `table`.
    pub fn bind<'t>(&self, table: &'t Table) -> Result<BoundPredicate<'t>> {
        let node = self.bind_node(table)?;
        Ok(BoundPredicate { node })
    }

    /// Evaluate into one bitmap **per shard** of a
    /// [`ShardedTable`](crate::shard::ShardedTable) (each
    /// bitmap indexed by shard-local row). Binding happens per shard, so
    /// string literals resolve against each shard's own dictionary; bit
    /// `r` of shard `s`'s bitmap equals bit `offsets[s] + r` of the bitmap
    /// the concatenated table would produce, for any layout and thread
    /// count (predicate evaluation is row-local, so this holds exactly).
    pub fn eval_sharded(
        &self,
        table: &crate::shard::ShardedTable,
        options: &crate::exec::ExecOptions,
    ) -> Result<Vec<Bitmap>> {
        // Same scheduling choice as `GroupIndex::build_sharded`: one worker
        // per shard when shards outnumber workers, chunk-parallel inside
        // each shard otherwise. Evaluation is row-local, so both levels
        // produce identical bitmaps.
        if table.num_shards() >= options.threads() {
            crate::exec::run_indexed(table.num_shards(), options, |s| {
                let shard = table.shard(s);
                let bound = self.bind(shard)?;
                Ok(bound
                    .eval_bitmap_with(shard.num_rows(), &crate::exec::ExecOptions::sequential()))
            })
            .into_iter()
            .collect()
        } else {
            table
                .shards()
                .iter()
                .map(|shard| Ok(self.bind(shard)?.eval_bitmap_with(shard.num_rows(), options)))
                .collect()
        }
    }

    fn bind_node<'t>(&self, table: &'t Table) -> Result<Node<'t>> {
        Ok(match self {
            Predicate::True => Node::True,
            Predicate::Cmp { expr, op, value } => {
                let bound = expr.bind(table)?;
                let rhs = Rhs::bind(&bound, value)?;
                Node::Cmp { expr: bound, op: *op, rhs }
            }
            Predicate::Between { expr, low, high } => {
                let bound = expr.bind(table)?;
                let low = as_f64(low)?;
                let high = as_f64(high)?;
                Node::Between { expr: bound, low, high }
            }
            Predicate::InList { expr, values } => {
                let bound = expr.bind(table)?;
                if bound.is_plain_str() {
                    // Resolve to dictionary codes; strings absent from the
                    // dictionary can never match and are dropped.
                    let dict = bound.column().dictionary().expect("plain str column");
                    let mut codes = Vec::with_capacity(values.len());
                    for v in values {
                        let s = v.as_str().ok_or_else(|| {
                            TableError::invalid(
                                "IN list over a string column needs string literals",
                            )
                        })?;
                        if let Some(code) = dict.code_of(s) {
                            codes.push(code);
                        }
                    }
                    codes.sort_unstable();
                    Node::InCodes { expr: bound, codes }
                } else {
                    let mut nums = Vec::with_capacity(values.len());
                    for v in values {
                        nums.push(as_f64(v)?);
                    }
                    Node::InNumbers { expr: bound, values: nums }
                }
            }
            Predicate::And(a, b) => {
                Node::And(Box::new(a.bind_node(table)?), Box::new(b.bind_node(table)?))
            }
            Predicate::Or(a, b) => {
                Node::Or(Box::new(a.bind_node(table)?), Box::new(b.bind_node(table)?))
            }
            Predicate::Not(a) => Node::Not(Box::new(a.bind_node(table)?)),
        })
    }
}

/// SQL-flavored rendering: atoms print as `expr OP literal` (string
/// literals single-quoted), conjunction/disjunction operands are
/// parenthesized when they are themselves compound, so the output
/// round-trips the tree shape unambiguously. Used by plan reports and the
/// engine's query log to describe predicate *shapes*.
impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn literal(v: &Value) -> String {
            match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            }
        }
        fn operand(p: &Predicate) -> String {
            match p {
                Predicate::And(..) | Predicate::Or(..) => format!("({p})"),
                _ => p.to_string(),
            }
        }
        match self {
            Predicate::True => f.write_str("TRUE"),
            Predicate::Cmp { expr, op, value } => {
                write!(f, "{expr} {op} {}", literal(value))
            }
            Predicate::Between { expr, low, high } => {
                write!(f, "{expr} BETWEEN {} AND {}", literal(low), literal(high))
            }
            Predicate::InList { expr, values } => {
                let list: Vec<String> = values.iter().map(literal).collect();
                write!(f, "{expr} IN ({})", list.join(", "))
            }
            Predicate::And(a, b) => write!(f, "{} AND {}", operand(a), operand(b)),
            Predicate::Or(a, b) => write!(f, "{} OR {}", operand(a), operand(b)),
            Predicate::Not(a) => write!(f, "NOT {}", operand(a)),
        }
    }
}

fn as_f64(v: &Value) -> Result<f64> {
    v.as_f64().ok_or_else(|| TableError::invalid(format!("expected a numeric literal, got {v:?}")))
}

#[derive(Debug, Clone)]
enum Rhs {
    /// Numeric comparison value.
    Number(f64),
    /// Dictionary code of a string literal present in the column dictionary.
    Code(u32),
    /// String literal absent from the dictionary: `=` never matches, `<>`
    /// always matches.
    MissingString,
}

impl Rhs {
    fn bind(expr: &BoundExpr<'_>, value: &Value) -> Result<Rhs> {
        if expr.is_plain_str() {
            let s = value.as_str().ok_or_else(|| {
                TableError::invalid(format!(
                    "comparison of a string column against non-string literal {value:?}"
                ))
            })?;
            let dict = expr.column().dictionary().expect("plain str column");
            Ok(match dict.code_of(s) {
                Some(code) => Rhs::Code(code),
                None => Rhs::MissingString,
            })
        } else {
            Ok(Rhs::Number(as_f64(value)?))
        }
    }
}

#[derive(Debug, Clone)]
enum Node<'t> {
    True,
    Cmp { expr: BoundExpr<'t>, op: CmpOp, rhs: Rhs },
    Between { expr: BoundExpr<'t>, low: f64, high: f64 },
    InCodes { expr: BoundExpr<'t>, codes: Vec<u32> },
    InNumbers { expr: BoundExpr<'t>, values: Vec<f64> },
    And(Box<Node<'t>>, Box<Node<'t>>),
    Or(Box<Node<'t>>, Box<Node<'t>>),
    Not(Box<Node<'t>>),
}

/// A predicate resolved against a concrete table.
#[derive(Debug, Clone)]
pub struct BoundPredicate<'t> {
    node: Node<'t>,
}

impl BoundPredicate<'_> {
    /// Evaluate at a single row.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        Self::eval(&self.node, row)
    }

    /// Evaluate over all `num_rows` rows into a bitmap.
    pub fn eval_bitmap(&self, num_rows: usize) -> Bitmap {
        Bitmap::from_fn(num_rows, |row| self.matches(row))
    }

    /// Evaluate into a bitmap with chunk-parallel execution; identical
    /// output to [`BoundPredicate::eval_bitmap`] for any thread count.
    pub fn eval_bitmap_with(&self, num_rows: usize, options: &crate::exec::ExecOptions) -> Bitmap {
        Bitmap::from_fn_with(num_rows, options, |row| self.matches(row))
    }

    fn eval(node: &Node<'_>, row: usize) -> bool {
        match node {
            Node::True => true,
            Node::Cmp { expr, op, rhs } => match rhs {
                Rhs::Number(n) => match expr.f64_at(row) {
                    Some(v) => op.evaluate_f64(v, *n),
                    None => false,
                },
                Rhs::Code(code) => {
                    let actual = expr.str_code_at(row).expect("bound to str column");
                    match op {
                        CmpOp::Eq => actual == *code,
                        CmpOp::Ne => actual != *code,
                        // Ordered comparison on strings compares the text.
                        _ => {
                            let dict = expr.column().dictionary().expect("str column");
                            op.evaluate(dict.get(actual).cmp(dict.get(*code)))
                        }
                    }
                }
                Rhs::MissingString => matches!(op, CmpOp::Ne),
            },
            Node::Between { expr, low, high } => match expr.f64_at(row) {
                Some(v) => v >= *low && v <= *high,
                None => false,
            },
            Node::InCodes { expr, codes } => {
                let actual = expr.str_code_at(row).expect("bound to str column");
                codes.binary_search(&actual).is_ok()
            }
            Node::InNumbers { expr, values } => match expr.f64_at(row) {
                Some(v) => values.contains(&v),
                None => false,
            },
            Node::And(a, b) => Self::eval(a, row) && Self::eval(b, row),
            Node::Or(a, b) => Self::eval(a, row) || Self::eval(b, row),
            Node::Not(a) => !Self::eval(a, row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::time::epoch_seconds;
    use crate::types::DataType;

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("country", DataType::Str),
            ("value", DataType::Float64),
            ("t", DataType::Timestamp),
        ]);
        let rows = [
            ("US", 0.5, epoch_seconds(2017, 1, 1, 8, 0, 0)),
            ("VN", 1.5, epoch_seconds(2018, 6, 1, 14, 0, 0)),
            ("VN", 0.1, epoch_seconds(2018, 7, 1, 22, 0, 0)),
            ("IN", 2.5, epoch_seconds(2017, 2, 1, 2, 0, 0)),
        ];
        for (c, v, t) in rows {
            b.push_row(&[Value::str(c), Value::Float64(v), Value::Timestamp(t)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn numeric_cmp() {
        let t = table();
        let p = Predicate::cmp("value", CmpOp::Gt, 0.5).bind(&t).unwrap();
        let bm = p.eval_bitmap(t.num_rows());
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn sharded_bitmaps_match_concatenated() {
        let t = table();
        // A split whose second shard's dictionary lacks "US": per-shard
        // binding must still evaluate string predicates correctly.
        let st = crate::shard::ShardedTable::from_tables(vec![t.take(&[0, 1]), t.take(&[2, 3])])
            .unwrap();
        for pred in [
            Predicate::cmp("country", CmpOp::Eq, "US"),
            Predicate::cmp("value", CmpOp::Gt, 0.5),
            Predicate::cmp("country", CmpOp::Ne, "ZZ"),
        ] {
            let global = pred.bind(&t).unwrap().eval_bitmap(t.num_rows());
            let per_shard =
                pred.eval_sharded(&st, &crate::exec::ExecOptions::sequential()).unwrap();
            assert_eq!(per_shard.len(), 2);
            let mut ones = Vec::new();
            for (s, bm) in per_shard.iter().enumerate() {
                ones.extend(bm.iter_ones().map(|r| st.offsets()[s] + r));
            }
            assert_eq!(ones, global.iter_ones().collect::<Vec<_>>(), "{pred:?}");
        }
    }

    #[test]
    fn string_eq_and_ne() {
        let t = table();
        let eq = Predicate::cmp("country", CmpOp::Eq, "VN").bind(&t).unwrap();
        assert_eq!(eq.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![1, 2]);
        let ne = Predicate::cmp("country", CmpOp::Ne, "VN").bind(&t).unwrap();
        assert_eq!(ne.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn string_missing_literal() {
        let t = table();
        let eq = Predicate::cmp("country", CmpOp::Eq, "ZZ").bind(&t).unwrap();
        assert_eq!(eq.eval_bitmap(4).count_ones(), 0);
        let ne = Predicate::cmp("country", CmpOp::Ne, "ZZ").bind(&t).unwrap();
        assert_eq!(ne.eval_bitmap(4).count_ones(), 4);
    }

    #[test]
    fn string_ordered_cmp() {
        let t = table();
        // "IN" < "US" < "VN" lexicographically.
        let p = Predicate::cmp("country", CmpOp::Lt, "US").bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn between_on_hour() {
        let t = table();
        let p = Predicate::between(ScalarExpr::hour("t"), 0i64, 12i64).bind(&t).unwrap();
        // hours: 8, 14, 22, 2 → rows 0 and 3.
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn year_filter() {
        let t = table();
        let p = Predicate::cmp_expr(ScalarExpr::year("t"), CmpOp::Eq, 2018i64).bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn in_list_strings() {
        let t = table();
        let p = Predicate::InList {
            expr: ScalarExpr::col("country"),
            values: vec![Value::str("US"), Value::str("IN"), Value::str("ZZ")],
        }
        .bind(&t)
        .unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn in_list_numbers() {
        let t = table();
        let p = Predicate::InList {
            expr: ScalarExpr::col("value"),
            values: vec![Value::Float64(0.5), Value::Float64(2.5)],
        }
        .bind(&t)
        .unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn and_or_not() {
        let t = table();
        let vn = Predicate::cmp("country", CmpOp::Eq, "VN");
        let big = Predicate::cmp("value", CmpOp::Gt, 1.0);
        let p = vn.clone().and(big.clone()).bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![1]);
        let p = vn.clone().or(big).bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![1, 2, 3]);
        let p = vn.not().bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn display_renders_sql_shape() {
        let vn = Predicate::cmp("country", CmpOp::Eq, "VN");
        let big = Predicate::cmp("value", CmpOp::Gt, 1.0);
        assert_eq!(vn.to_string(), "country = 'VN'");
        assert_eq!(vn.clone().and(big.clone()).to_string(), "country = 'VN' AND value > 1");
        assert_eq!(
            vn.clone().and(big.clone().or(vn.clone())).to_string(),
            "country = 'VN' AND (value > 1 OR country = 'VN')"
        );
        assert_eq!(
            Predicate::between(ScalarExpr::hour("t"), 0i64, 12i64).to_string(),
            "HOUR(t) BETWEEN 0 AND 12"
        );
        assert_eq!(
            Predicate::InList {
                expr: ScalarExpr::col("country"),
                values: vec![Value::str("US"), Value::str("IN")],
            }
            .to_string(),
            "country IN ('US', 'IN')"
        );
        assert_eq!(Predicate::True.to_string(), "TRUE");
        assert_eq!(vn.not().to_string(), "NOT country = 'VN'");
    }

    #[test]
    fn true_matches_all() {
        let t = table();
        let p = Predicate::True.bind(&t).unwrap();
        assert_eq!(p.eval_bitmap(4).count_ones(), 4);
    }

    #[test]
    fn string_vs_number_literal_rejected() {
        let t = table();
        assert!(Predicate::cmp("country", CmpOp::Eq, 5i64).bind(&t).is_err());
        assert!(Predicate::cmp("value", CmpOp::Eq, "x").bind(&t).is_err());
    }
}

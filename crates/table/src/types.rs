//! Scalar value and data-type definitions.

use std::fmt;
use std::sync::Arc;

/// The type of a column or scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// Dictionary-encoded UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Timestamp stored as seconds since the Unix epoch (UTC).
    Timestamp,
}

impl DataType {
    /// Whether values of this type can be aggregated numerically.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64 | DataType::Timestamp)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Value` is used at API boundaries (row construction, predicate literals,
/// group keys in results). Hot loops inside the engine operate on typed
/// column storage instead.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit IEEE float.
    Float64(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Seconds since the Unix epoch.
    Timestamp(i64),
    /// Missing value.
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value, if it is not null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Null => None,
        }
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(v) | Value::Timestamp(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) | Value::Null => None,
        }
    }

    /// Integer view of the value, if it has one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) | Value::Timestamp(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Int64(a), Int64(b)) | (Timestamp(a), Timestamp(b)) => a == b,
            (Float64(a), Float64(b)) => a.total_cmp(b) == std::cmp::Ordering::Equal,
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Null, Null) => true,
            // Numeric cross-type comparison: Int64 vs Float64.
            (Int64(a), Float64(b)) | (Float64(b), Int64(a)) => (*a as f64) == *b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_numeric() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Int64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn value_equality_cross_numeric() {
        assert_eq!(Value::Int64(3), Value::Float64(3.0));
        assert_ne!(Value::Int64(3), Value::Float64(3.5));
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::Int64(1));
    }

    #[test]
    fn value_float_total_order_eq() {
        assert_eq!(Value::Float64(f64::NAN), Value::Float64(f64::NAN));
        assert_ne!(Value::Float64(0.0), Value::Float64(-0.0));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int64(7).to_string(), "7");
        assert_eq!(Value::str("VN").to_string(), "VN");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(60).to_string(), "@60");
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(1i64), Value::Int64(1));
        assert_eq!(Value::from(1.5f64), Value::Float64(1.5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}

//! Recursive-descent parser for the SQL subset.

use super::lexer::{tokenize, Token, TokenKind};
use crate::agg::{AggExpr, AggKind};
use crate::error::TableError;
use crate::expr::{ArithOp, CaseWhen, ScalarExpr};
use crate::predicate::{CmpOp, Predicate};
use crate::query::GroupByQuery;
use crate::types::Value;
use crate::Result;

/// Maximum nesting depth for expressions and predicates. Deeply nested
/// hostile input returns an error instead of exhausting the stack.
const MAX_DEPTH: usize = 64;

/// A parsed statement: a query, or a request to explain one.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `SELECT …` — execute the query.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …` — plan the query and report, without executing.
    Explain(SelectStmt),
}

/// The `JOIN dim ON fact.k = dim.k` clause of a [`SelectStmt`]: an inner
/// equi-join against a second (dimension) table. The `ON` sides must be
/// qualified with the two table names; everything else in the statement
/// uses bare column names against the joined schema.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined (dimension) table name.
    pub table: String,
    /// Join key column on the `FROM` (fact) table.
    pub fact_key: String,
    /// Join key column on the joined (dimension) table.
    pub dim_key: String,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    /// Items in the select list, in order.
    pub items: Vec<SelectItem>,
    /// Table name from `FROM` (informational; execution binds to a `Table`).
    pub table: String,
    /// `JOIN … ON …` clause, if present.
    pub join: Option<JoinClause>,
    /// `WHERE` predicate.
    pub predicate: Option<Predicate>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<ScalarExpr>,
    /// `WITH CUBE` flag.
    pub cube: bool,
}

/// One item in a select list.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// A plain grouping expression (must also appear in `GROUP BY`).
    Scalar(ScalarExpr),
    /// An aggregate.
    Agg(AggExpr),
}

impl SelectStmt {
    /// Lower to an executable [`GroupByQuery`].
    ///
    /// Validates that every scalar select item appears in the `GROUP BY`
    /// list (standard SQL grouping rule). A `JOIN` clause is not part of
    /// the produced query — callers that support joins (the engine)
    /// materialize the join first and run the query over its output.
    pub fn into_query(self) -> Result<GroupByQuery> {
        let mut aggregates = Vec::new();
        for item in &self.items {
            match item {
                SelectItem::Scalar(expr) => {
                    if !self.group_by.contains(expr) {
                        return Err(TableError::sql(
                            format!("selected column {expr} does not appear in GROUP BY"),
                            None,
                        ));
                    }
                }
                SelectItem::Agg(agg) => aggregates.push(agg.clone()),
            }
        }
        if aggregates.is_empty() {
            return Err(TableError::sql("query has no aggregate in the select list", None));
        }
        let mut q = GroupByQuery::new(self.group_by, aggregates);
        q.predicate = self.predicate;
        q.cube = self.cube;
        Ok(q)
    }
}

/// Parse a statement, `EXPLAIN` included.
pub fn parse_statement(input: &str) -> Result<Statement> {
    let run = || -> Result<Statement> {
        let tokens = tokenize(input)?;
        let mut p = Parser { tokens, pos: 0, depth: 0 };
        let explain = p.eat_keyword("EXPLAIN");
        let stmt = p.select()?;
        p.expect_eof()?;
        Ok(if explain { Statement::Explain(stmt) } else { Statement::Select(stmt) })
    };
    run().map_err(|e| with_snippet(e, input))
}

/// Parse a plain `SELECT` statement. `EXPLAIN` is rejected here — it
/// needs an engine catalog to plan against; use [`parse_statement`].
pub fn parse(input: &str) -> Result<SelectStmt> {
    match parse_statement(input)? {
        Statement::Select(stmt) => Ok(stmt),
        Statement::Explain(_) => Err(with_snippet(
            TableError::sql("EXPLAIN requires an engine catalog to plan against", Some(0)),
            input,
        )),
    }
}

/// Attach a source snippet to a positioned SQL error, so the message
/// points at the offending characters, not just a byte offset.
fn with_snippet(err: TableError, input: &str) -> TableError {
    let TableError::Sql { message, position: Some(pos) } = &err else {
        return err;
    };
    if *pos >= input.len() {
        return TableError::Sql {
            message: format!("{message} (at end of statement)"),
            position: Some(*pos),
        };
    }
    // Snip forward from the error position to a char boundary ≤ 24 bytes.
    let mut end = (*pos + 24).min(input.len());
    while !input.is_char_boundary(end) {
        end -= 1;
    }
    let ellipsis = if end < input.len() { "…" } else { "" };
    TableError::Sql {
        message: format!("{message} near \"{}{ellipsis}\"", &input[*pos..end]),
        position: Some(*pos),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> TableError {
        TableError::sql(message, Some(self.peek_pos()))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// `table.column` — only the `JOIN … ON` clause uses qualified names.
    fn qualified(&mut self) -> Result<(String, String)> {
        let table = self.ident()?;
        self.expect(&TokenKind::Dot, ". (ON sides must be qualified: table.column)")?;
        let column = self.ident()?;
        Ok((table, column))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.advance();
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let join = if self.eat_keyword("JOIN") { Some(self.join_clause(&table)?) } else { None };
        let predicate = if self.eat_keyword("WHERE") { Some(self.predicate()?) } else { None };
        let mut group_by = Vec::new();
        let mut cube = false;
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while matches!(self.peek(), TokenKind::Comma) {
                self.advance();
                group_by.push(self.expr()?);
            }
            if self.eat_keyword("WITH") {
                self.expect_keyword("CUBE")?;
                cube = true;
            }
        }
        Ok(SelectStmt { items, table, join, predicate, group_by, cube })
    }

    fn join_clause(&mut self, fact: &str) -> Result<JoinClause> {
        let dim = self.ident()?;
        if dim.eq_ignore_ascii_case(fact) {
            return Err(self.error(format!("self-join of {fact} is not supported")));
        }
        self.expect_keyword("ON")?;
        let left_pos = self.peek_pos();
        let (lq, lc) = self.qualified()?;
        self.expect(&TokenKind::Eq, "= (the join is an equi-join)")?;
        let right_pos = self.peek_pos();
        let (rq, rc) = self.qualified()?;
        let side = |qualifier: &str, pos: usize| -> Result<bool> {
            if qualifier.eq_ignore_ascii_case(fact) {
                Ok(true)
            } else if qualifier.eq_ignore_ascii_case(&dim) {
                Ok(false)
            } else {
                Err(TableError::sql(
                    format!("ON qualifier {qualifier} names neither {fact} nor {dim}"),
                    Some(pos),
                ))
            }
        };
        let (fact_key, dim_key) = match (side(&lq, left_pos)?, side(&rq, right_pos)?) {
            (true, false) => (lc, rc),
            (false, true) => (rc, lc),
            _ => {
                return Err(TableError::sql(
                    format!("ON must compare one {fact} column with one {dim} column"),
                    Some(left_pos),
                ))
            }
        };
        Ok(JoinClause { table: dim, fact_key, dim_key })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let item = match self.peek().clone() {
            TokenKind::Ident(name) if is_agg_fn(&name) => SelectItem::Agg(self.aggregate()?),
            _ => SelectItem::Scalar(self.expr()?),
        };
        // Optional [AS] alias.
        let item = if self.eat_keyword("AS") {
            let alias = self.ident()?;
            match item {
                SelectItem::Agg(a) => SelectItem::Agg(a.with_alias(alias)),
                SelectItem::Scalar(_) => {
                    return Err(self.error("aliases are only supported on aggregates"))
                }
            }
        } else if let (SelectItem::Agg(a), TokenKind::Ident(alias)) = (&item, self.peek().clone()) {
            // Bare alias (`SUM(x) total`), but keywords terminate the item.
            if is_clause_keyword(&alias) {
                item
            } else {
                self.advance();
                SelectItem::Agg(a.clone().with_alias(alias))
            }
        } else {
            item
        };
        Ok(item)
    }

    fn aggregate(&mut self) -> Result<AggExpr> {
        let name = self.ident()?.to_ascii_uppercase();
        self.expect(&TokenKind::LParen, "(")?;
        let agg = match name.as_str() {
            "COUNT" => {
                if matches!(self.peek(), TokenKind::Star) {
                    self.advance();
                    AggExpr::count()
                } else {
                    // COUNT(col) counts rows; inputs here are never null.
                    let _ = self.expr()?;
                    AggExpr::count()
                }
            }
            "COUNT_IF" => {
                let expr = self.expr()?;
                let op = self.cmp_op()?;
                let threshold = self.signed_number("COUNT_IF needs a numeric bound")?;
                AggExpr::count_if_over(expr, op, threshold)
            }
            "AVG" | "SUM" | "MIN" | "MAX" | "VAR" | "STD" => {
                let expr = self.expr()?;
                let kind = match name.as_str() {
                    "AVG" => AggKind::Avg,
                    "SUM" => AggKind::Sum,
                    "MIN" => AggKind::Min,
                    "MAX" => AggKind::Max,
                    "VAR" => AggKind::Var,
                    _ => AggKind::Std,
                };
                AggExpr::over(kind, expr)
            }
            other => return Err(self.error(format!("unknown aggregate function {other}"))),
        };
        self.expect(&TokenKind::RParen, ")")?;
        Ok(agg)
    }

    /// `expr := term (('+' | '-') term)*` — standard precedence climbing.
    fn expr(&mut self) -> Result<ScalarExpr> {
        self.enter()?;
        let result = (|| {
            let mut left = self.term()?;
            loop {
                let op = match self.peek() {
                    TokenKind::Plus => ArithOp::Add,
                    TokenKind::Minus => ArithOp::Sub,
                    _ => break,
                };
                self.advance();
                let right = self.term()?;
                left = ScalarExpr::binary(op, left, right);
            }
            Ok(left)
        })();
        self.depth -= 1;
        result
    }

    /// `term := factor (('*' | '/') factor)*`.
    fn term(&mut self) -> Result<ScalarExpr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.factor()?;
            left = ScalarExpr::binary(op, left, right);
        }
        Ok(left)
    }

    /// `factor := number | '-' number | '(' expr ')' | CASE … END
    ///          | YEAR|MONTH|DAY|HOUR '(' ident ')' | ident`.
    fn factor(&mut self) -> Result<ScalarExpr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(ScalarExpr::lit(n))
            }
            TokenKind::Minus => {
                // Unary minus folds into a numeric literal only; `-col`
                // would be ambiguous with the (unsupported) unary negate.
                self.advance();
                match self.advance() {
                    TokenKind::Number(n) => Ok(ScalarExpr::lit(-n)),
                    other => {
                        Err(self
                            .error(format!("'-' must precede a numeric literal, got {other:?}")))
                    }
                }
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, ")")?;
                Ok(inner)
            }
            TokenKind::Ident(name) if name.eq_ignore_ascii_case("CASE") => self.case(),
            TokenKind::Ident(name) => {
                self.advance();
                let upper = name.to_ascii_uppercase();
                if matches!(upper.as_str(), "YEAR" | "MONTH" | "DAY" | "HOUR")
                    && matches!(self.peek(), TokenKind::LParen)
                {
                    self.advance();
                    let inner = Box::new(ScalarExpr::Column(self.ident()?));
                    self.expect(&TokenKind::RParen, ")")?;
                    return Ok(match upper.as_str() {
                        "YEAR" => ScalarExpr::Year(inner),
                        "MONTH" => ScalarExpr::Month(inner),
                        "DAY" => ScalarExpr::Day(inner),
                        _ => ScalarExpr::Hour(inner),
                    });
                }
                if matches!(self.peek(), TokenKind::Dot) {
                    return Err(self
                        .error("qualified names are only supported in JOIN ON; use bare columns"));
                }
                Ok(ScalarExpr::Column(name))
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }

    /// `CASE (WHEN expr OP expr THEN expr)+ [ELSE expr] END`.
    fn case(&mut self) -> Result<ScalarExpr> {
        self.enter()?;
        let result = (|| {
            self.expect_keyword("CASE")?;
            let mut whens = Vec::new();
            while self.eat_keyword("WHEN") {
                let lhs = self.expr()?;
                let op = self.cmp_op()?;
                let rhs = self.expr()?;
                self.expect_keyword("THEN")?;
                let then = self.expr()?;
                whens.push(CaseWhen { lhs, op, rhs, then });
            }
            if whens.is_empty() {
                return Err(self.error("CASE needs at least one WHEN arm"));
            }
            let otherwise =
                if self.eat_keyword("ELSE") { Some(Box::new(self.expr()?)) } else { None };
            self.expect_keyword("END")?;
            Ok(ScalarExpr::Case { whens, otherwise })
        })();
        self.depth -= 1;
        result
    }

    /// Bump the nesting depth, erroring once hostile input nests past
    /// [`MAX_DEPTH`] (the caller decrements on the way out).
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.advance() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison operator, got {other:?}"))),
        };
        Ok(op)
    }

    /// A numeric literal with optional leading `-`.
    fn signed_number(&mut self, what: &str) -> Result<f64> {
        let neg = matches!(self.peek(), TokenKind::Minus);
        if neg {
            self.advance();
        }
        match self.advance() {
            TokenKind::Number(n) => Ok(if neg { -n } else { n }),
            other => Err(self.error(format!("{what}, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.peek().clone() {
            TokenKind::Minus => Ok(Value::Float64(self.signed_number("expected a number")?)),
            _ => match self.advance() {
                TokenKind::Number(n) => Ok(Value::Float64(n)),
                TokenKind::Str(s) => Ok(Value::str(s)),
                TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
                TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
                other => Err(self.error(format!("expected literal, got {other:?}"))),
            },
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        self.enter()?;
        let result = (|| {
            let mut left = self.and_predicate()?;
            while self.eat_keyword("OR") {
                let right = self.and_predicate()?;
                left = left.or(right);
            }
            Ok(left)
        })();
        self.depth -= 1;
        result
    }

    fn and_predicate(&mut self) -> Result<Predicate> {
        let mut left = self.unary_predicate()?;
        while self.eat_keyword("AND") {
            let right = self.unary_predicate()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary_predicate(&mut self) -> Result<Predicate> {
        self.enter()?;
        let result = (|| {
            if self.eat_keyword("NOT") {
                return Ok(self.unary_predicate()?.not());
            }
            if matches!(self.peek(), TokenKind::LParen) {
                // `(` is ambiguous: a grouped predicate or a parenthesized
                // arithmetic expression (`(x + 1) > 2`). Try the predicate
                // reading first; on failure, rewind and read a comparison.
                let save = self.pos;
                self.advance();
                if let Ok(inner) = self.predicate() {
                    if matches!(self.peek(), TokenKind::RParen) {
                        self.advance();
                        return Ok(inner);
                    }
                }
                self.pos = save;
            }
            let expr = self.expr()?;
            if self.eat_keyword("BETWEEN") {
                let low = self.literal()?;
                self.expect_keyword("AND")?;
                let high = self.literal()?;
                return Ok(Predicate::Between { expr, low, high });
            }
            if self.eat_keyword("IN") {
                self.expect(&TokenKind::LParen, "(")?;
                let mut values = vec![self.literal()?];
                while matches!(self.peek(), TokenKind::Comma) {
                    self.advance();
                    values.push(self.literal()?);
                }
                self.expect(&TokenKind::RParen, ")")?;
                return Ok(Predicate::InList { expr, values });
            }
            let op = self.cmp_op()?;
            let value = self.literal()?;
            Ok(Predicate::Cmp { expr, op, value })
        })();
        self.depth -= 1;
        result
    }
}

fn is_agg_fn(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "AVG" | "SUM" | "COUNT" | "COUNT_IF" | "MIN" | "MAX" | "VAR" | "STD"
    )
}

fn is_clause_keyword(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "FROM" | "WHERE" | "GROUP" | "WITH" | "AS" | "JOIN" | "ON"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;

    #[test]
    fn parse_simple() {
        let s = parse("SELECT major, AVG(gpa) FROM Student GROUP BY major").unwrap();
        assert_eq!(s.table, "Student");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.group_by, vec![ScalarExpr::col("major")]);
        assert!(!s.cube);
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].kind, AggKind::Avg);
    }

    #[test]
    fn parse_where_between_function() {
        let s = parse(
            "SELECT country, AVG(value) FROM OpenAQ \
             WHERE HOUR(local_time) BETWEEN 0 AND 12 GROUP BY country",
        )
        .unwrap();
        match s.predicate.unwrap() {
            Predicate::Between { expr, .. } => assert_eq!(expr, ScalarExpr::hour("local_time")),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parse_cube() {
        let s = parse(
            "SELECT country, parameter, SUM(value) FROM OpenAQ \
             GROUP BY country, parameter WITH CUBE",
        )
        .unwrap();
        assert!(s.cube);
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn parse_count_variants() {
        let s = parse("SELECT COUNT(*), COUNT(value) FROM t").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.aggregates.iter().all(|a| a.kind == AggKind::Count));
    }

    #[test]
    fn parse_count_if() {
        let s = parse("SELECT parameter, COUNT_IF(value > 0.5) FROM t GROUP BY parameter").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates[0].kind, AggKind::CountIf);
        assert_eq!(q.aggregates[0].condition, Some((CmpOp::Gt, 0.5)));
    }

    #[test]
    fn parse_aliases() {
        let s = parse("SELECT x, SUM(v) AS agg1, AVG(v) agg2 FROM t GROUP BY x").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates[0].alias, "agg1");
        assert_eq!(q.aggregates[1].alias, "agg2");
    }

    #[test]
    fn parse_and_or_not_parens() {
        let s =
            parse("SELECT c, AVG(v) FROM t WHERE NOT (c = 'x' OR v < 3) AND v <= 10 GROUP BY c")
                .unwrap();
        assert!(matches!(s.predicate.unwrap(), Predicate::And(_, _)));
    }

    #[test]
    fn parse_in_list() {
        let s = parse("SELECT c, AVG(v) FROM t WHERE c IN ('a','b') GROUP BY c").unwrap();
        match s.predicate.unwrap() {
            Predicate::InList { values, .. } => assert_eq!(values.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_year_group_by() {
        let s = parse("SELECT YEAR(t), AVG(v) FROM tab GROUP BY YEAR(t)").unwrap();
        assert_eq!(s.group_by, vec![ScalarExpr::year("t")]);
        assert!(s.into_query().is_ok());
    }

    #[test]
    fn parse_arithmetic_projection() {
        let s = parse("SELECT g, AVG(price * qty + 1) FROM t GROUP BY g").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates[0].alias, "AVG(((price * qty) + 1))");
        assert_eq!(
            q.aggregates[0].input,
            Some(ScalarExpr::binary(
                ArithOp::Add,
                ScalarExpr::binary(ArithOp::Mul, ScalarExpr::col("price"), ScalarExpr::col("qty")),
                ScalarExpr::lit(1.0),
            ))
        );
    }

    #[test]
    fn arithmetic_precedence_and_parens() {
        let s = parse("SELECT SUM(a + b * c) FROM t").unwrap();
        let SelectItem::Agg(agg) = &s.items[0] else { panic!() };
        assert_eq!(agg.input.as_ref().unwrap().display_name(), "(a + (b * c))");
        let s = parse("SELECT SUM((a + b) * c) FROM t").unwrap();
        let SelectItem::Agg(agg) = &s.items[0] else { panic!() };
        assert_eq!(agg.input.as_ref().unwrap().display_name(), "((a + b) * c)");
        let s = parse("SELECT SUM(a - -2) FROM t").unwrap();
        let SelectItem::Agg(agg) = &s.items[0] else { panic!() };
        assert_eq!(agg.input.as_ref().unwrap().display_name(), "(a - -2)");
    }

    #[test]
    fn parse_case_expression() {
        let s = parse(
            "SELECT g, SUM(CASE WHEN v > 10 THEN v ELSE 0 END) FROM t \
             WHERE CASE WHEN v > 0 THEN 1 ELSE 0 END = 1 GROUP BY g",
        )
        .unwrap();
        let SelectItem::Agg(agg) = &s.items[1] else { panic!() };
        assert_eq!(agg.alias, "SUM(CASE WHEN v > 10 THEN v ELSE 0 END)");
        assert!(matches!(
            agg.input,
            Some(ScalarExpr::Case { ref whens, otherwise: Some(_) }) if whens.len() == 1
        ));
        assert!(s.predicate.is_some());
    }

    #[test]
    fn parse_arithmetic_in_predicate_and_group_by() {
        let s =
            parse("SELECT v / 10, COUNT(*) FROM t WHERE (v + 1) * 2 > 6 GROUP BY v / 10").unwrap();
        assert_eq!(s.group_by[0].display_name(), "(v / 10)");
        match s.predicate.unwrap() {
            Predicate::Cmp { expr, .. } => assert_eq!(expr.display_name(), "((v + 1) * 2)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_explain() {
        let s = parse_statement("EXPLAIN SELECT g, AVG(v) FROM t GROUP BY g").unwrap();
        let Statement::Explain(inner) = s else { panic!("expected Explain") };
        assert_eq!(inner.table, "t");
        // Plain parse() rejects EXPLAIN with a clean error, not a panic.
        let err = parse("EXPLAIN SELECT g, AVG(v) FROM t GROUP BY g").unwrap_err();
        assert!(err.to_string().contains("EXPLAIN"), "{err}");
    }

    #[test]
    fn parse_join() {
        let s = parse("SELECT region, SUM(v) FROM fact JOIN dim ON fact.k = dim.k GROUP BY region")
            .unwrap();
        let join = s.join.unwrap();
        assert_eq!(join.table, "dim");
        assert_eq!(join.fact_key, "k");
        assert_eq!(join.dim_key, "k");
    }

    #[test]
    fn parse_join_sides_in_either_order() {
        let s = parse("SELECT SUM(v) FROM fact JOIN dim ON dim.dk = fact.fk").unwrap();
        let join = s.join.unwrap();
        assert_eq!(join.fact_key, "fk");
        assert_eq!(join.dim_key, "dk");
    }

    #[test]
    fn join_rejects_bad_on_clauses() {
        for (sql, needle) in [
            ("SELECT SUM(v) FROM f JOIN d ON f.k = x.k", "names neither"),
            ("SELECT SUM(v) FROM f JOIN d ON f.k = f.k2", "one f column with one d column"),
            ("SELECT SUM(v) FROM f JOIN d ON k = d.k", "qualified"),
            ("SELECT SUM(v) FROM f JOIN f ON f.k = f.k", "self-join"),
            ("SELECT SUM(v) FROM f JOIN d ON f.k < d.k", "equi-join"),
            ("SELECT SUM(f.v) FROM f JOIN d ON f.k = d.k", "bare columns"),
        ] {
            let err = parse(sql).unwrap_err();
            assert!(err.to_string().contains(needle), "{sql} -> {err}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = format!("SELECT SUM({}x{}) FROM t", "(".repeat(500), ")".repeat(500));
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let deep_not = format!("SELECT SUM(v) FROM t WHERE {}v > 1", "NOT ".repeat(500));
        assert!(parse(&deep_not).is_err());
    }

    #[test]
    fn rejects_scalar_not_in_group_by() {
        let s = parse("SELECT major, AVG(gpa) FROM t GROUP BY college").unwrap();
        assert!(s.into_query().is_err());
    }

    #[test]
    fn rejects_no_aggregate() {
        let s = parse("SELECT major FROM t GROUP BY major").unwrap();
        assert!(s.into_query().is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("SELECT AVG(x) FROM t GROUP BY y zzz qqq").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT AVG(x)").is_err());
    }

    #[test]
    fn error_carries_position() {
        let err = parse("SELECT AVG(x) FRM t").unwrap_err();
        match err {
            TableError::Sql { position, .. } => assert!(position.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_carries_snippet() {
        let err = parse("SELECT AVG(x) FROM t WHERRE v > 1").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("near \"WHERRE v > 1\""), "{msg}");
        let err = parse("SELECT AVG(x) FROM").unwrap_err();
        assert!(err.to_string().contains("at end of statement"), "{}", err);
    }
}

//! Recursive-descent parser for the SQL subset.

use super::lexer::{tokenize, Token, TokenKind};
use crate::agg::AggExpr;
use crate::error::TableError;
use crate::expr::ScalarExpr;
use crate::predicate::{CmpOp, Predicate};
use crate::query::GroupByQuery;
use crate::types::Value;
use crate::Result;

/// A parsed `SELECT` statement.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    /// Items in the select list, in order.
    pub items: Vec<SelectItem>,
    /// Table name from `FROM` (informational; execution binds to a `Table`).
    pub table: String,
    /// `WHERE` predicate.
    pub predicate: Option<Predicate>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<ScalarExpr>,
    /// `WITH CUBE` flag.
    pub cube: bool,
}

/// One item in a select list.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// A plain grouping expression (must also appear in `GROUP BY`).
    Scalar(ScalarExpr),
    /// An aggregate.
    Agg(AggExpr),
}

impl SelectStmt {
    /// Lower to an executable [`GroupByQuery`].
    ///
    /// Validates that every scalar select item appears in the `GROUP BY`
    /// list (standard SQL grouping rule).
    pub fn into_query(self) -> Result<GroupByQuery> {
        let mut aggregates = Vec::new();
        for item in &self.items {
            match item {
                SelectItem::Scalar(expr) => {
                    if !self.group_by.contains(expr) {
                        return Err(TableError::sql(
                            format!("selected column {expr} does not appear in GROUP BY"),
                            None,
                        ));
                    }
                }
                SelectItem::Agg(agg) => aggregates.push(agg.clone()),
            }
        }
        if aggregates.is_empty() {
            return Err(TableError::sql("query has no aggregate in the select list", None));
        }
        let mut q = GroupByQuery::new(self.group_by, aggregates);
        q.predicate = self.predicate;
        q.cube = self.cube;
        Ok(q)
    }
}

/// Parse a statement.
pub fn parse(input: &str) -> Result<SelectStmt> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> TableError {
        TableError::sql(message, Some(self.peek_pos()))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.select_item()?];
        while matches!(self.peek(), TokenKind::Comma) {
            self.advance();
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_keyword("WHERE") { Some(self.predicate()?) } else { None };
        let mut group_by = Vec::new();
        let mut cube = false;
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.scalar()?);
            while matches!(self.peek(), TokenKind::Comma) {
                self.advance();
                group_by.push(self.scalar()?);
            }
            if self.eat_keyword("WITH") {
                self.expect_keyword("CUBE")?;
                cube = true;
            }
        }
        Ok(SelectStmt { items, table, predicate, group_by, cube })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let item = match self.peek().clone() {
            TokenKind::Ident(name) if is_agg_fn(&name) => SelectItem::Agg(self.aggregate()?),
            _ => SelectItem::Scalar(self.scalar()?),
        };
        // Optional [AS] alias.
        let item = if self.eat_keyword("AS") {
            let alias = self.ident()?;
            match item {
                SelectItem::Agg(a) => SelectItem::Agg(a.with_alias(alias)),
                SelectItem::Scalar(_) => {
                    return Err(self.error("aliases are only supported on aggregates"))
                }
            }
        } else if let (SelectItem::Agg(a), TokenKind::Ident(alias)) = (&item, self.peek().clone()) {
            // Bare alias (`SUM(x) total`), but keywords terminate the item.
            if is_clause_keyword(&alias) {
                item
            } else {
                self.advance();
                SelectItem::Agg(a.clone().with_alias(alias))
            }
        } else {
            item
        };
        Ok(item)
    }

    fn aggregate(&mut self) -> Result<AggExpr> {
        let name = self.ident()?.to_ascii_uppercase();
        self.expect(&TokenKind::LParen, "(")?;
        let agg = match name.as_str() {
            "COUNT" => {
                if matches!(self.peek(), TokenKind::Star) {
                    self.advance();
                    AggExpr::count()
                } else {
                    // COUNT(col) counts rows; inputs here are never null.
                    let _ = self.scalar()?;
                    AggExpr::count()
                }
            }
            "COUNT_IF" => {
                let expr = self.scalar()?;
                let op = self.cmp_op()?;
                let threshold = match self.advance() {
                    TokenKind::Number(n) => n,
                    other => {
                        return Err(
                            self.error(format!("COUNT_IF needs a numeric bound, got {other:?}"))
                        )
                    }
                };
                let col = match expr {
                    ScalarExpr::Column(c) => c,
                    other => {
                        return Err(self.error(format!(
                            "COUNT_IF over computed expression {other} is not supported"
                        )))
                    }
                };
                AggExpr::count_if(col, op, threshold)
            }
            "AVG" | "SUM" | "MIN" | "MAX" | "VAR" | "STD" => {
                let expr = self.scalar()?;
                let col = match expr {
                    ScalarExpr::Column(c) => c,
                    other => {
                        return Err(self.error(format!(
                            "{name} over computed expression {other} is not supported"
                        )))
                    }
                };
                match name.as_str() {
                    "AVG" => AggExpr::avg(col),
                    "SUM" => AggExpr::sum(col),
                    "MIN" => AggExpr::min(col),
                    "MAX" => AggExpr::max(col),
                    "VAR" => AggExpr::var(col),
                    _ => AggExpr::std(col),
                }
            }
            other => return Err(self.error(format!("unknown aggregate function {other}"))),
        };
        self.expect(&TokenKind::RParen, ")")?;
        Ok(agg)
    }

    fn scalar(&mut self) -> Result<ScalarExpr> {
        let name = self.ident()?;
        let upper = name.to_ascii_uppercase();
        if matches!(upper.as_str(), "YEAR" | "MONTH" | "DAY" | "HOUR")
            && matches!(self.peek(), TokenKind::LParen)
        {
            self.advance();
            let inner = self.ident()?;
            self.expect(&TokenKind::RParen, ")")?;
            let inner = Box::new(ScalarExpr::Column(inner));
            return Ok(match upper.as_str() {
                "YEAR" => ScalarExpr::Year(inner),
                "MONTH" => ScalarExpr::Month(inner),
                "DAY" => ScalarExpr::Day(inner),
                _ => ScalarExpr::Hour(inner),
            });
        }
        Ok(ScalarExpr::Column(name))
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.advance() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison operator, got {other:?}"))),
        };
        Ok(op)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.advance() {
            TokenKind::Number(n) => Ok(Value::Float64(n)),
            TokenKind::Str(s) => Ok(Value::str(s)),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(self.error(format!("expected literal, got {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.and_predicate()?;
        while self.eat_keyword("OR") {
            let right = self.and_predicate()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_predicate(&mut self) -> Result<Predicate> {
        let mut left = self.unary_predicate()?;
        while self.eat_keyword("AND") {
            let right = self.unary_predicate()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary_predicate(&mut self) -> Result<Predicate> {
        if self.eat_keyword("NOT") {
            return Ok(self.unary_predicate()?.not());
        }
        if matches!(self.peek(), TokenKind::LParen) {
            self.advance();
            let inner = self.predicate()?;
            self.expect(&TokenKind::RParen, ")")?;
            return Ok(inner);
        }
        let expr = self.scalar()?;
        if self.eat_keyword("BETWEEN") {
            let low = self.literal()?;
            self.expect_keyword("AND")?;
            let high = self.literal()?;
            return Ok(Predicate::Between { expr, low, high });
        }
        if self.eat_keyword("IN") {
            self.expect(&TokenKind::LParen, "(")?;
            let mut values = vec![self.literal()?];
            while matches!(self.peek(), TokenKind::Comma) {
                self.advance();
                values.push(self.literal()?);
            }
            self.expect(&TokenKind::RParen, ")")?;
            return Ok(Predicate::InList { expr, values });
        }
        let op = self.cmp_op()?;
        let value = self.literal()?;
        Ok(Predicate::Cmp { expr, op, value })
    }
}

fn is_agg_fn(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "AVG" | "SUM" | "COUNT" | "COUNT_IF" | "MIN" | "MAX" | "VAR" | "STD"
    )
}

fn is_clause_keyword(name: &str) -> bool {
    matches!(name.to_ascii_uppercase().as_str(), "FROM" | "WHERE" | "GROUP" | "WITH" | "AS")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;

    #[test]
    fn parse_simple() {
        let s = parse("SELECT major, AVG(gpa) FROM Student GROUP BY major").unwrap();
        assert_eq!(s.table, "Student");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.group_by, vec![ScalarExpr::col("major")]);
        assert!(!s.cube);
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].kind, AggKind::Avg);
    }

    #[test]
    fn parse_where_between_function() {
        let s = parse(
            "SELECT country, AVG(value) FROM OpenAQ \
             WHERE HOUR(local_time) BETWEEN 0 AND 12 GROUP BY country",
        )
        .unwrap();
        match s.predicate.unwrap() {
            Predicate::Between { expr, .. } => assert_eq!(expr, ScalarExpr::hour("local_time")),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn parse_cube() {
        let s = parse(
            "SELECT country, parameter, SUM(value) FROM OpenAQ \
             GROUP BY country, parameter WITH CUBE",
        )
        .unwrap();
        assert!(s.cube);
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn parse_count_variants() {
        let s = parse("SELECT COUNT(*), COUNT(value) FROM t").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates.len(), 2);
        assert!(q.aggregates.iter().all(|a| a.kind == AggKind::Count));
    }

    #[test]
    fn parse_count_if() {
        let s = parse("SELECT parameter, COUNT_IF(value > 0.5) FROM t GROUP BY parameter").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates[0].kind, AggKind::CountIf);
        assert_eq!(q.aggregates[0].condition, Some((CmpOp::Gt, 0.5)));
    }

    #[test]
    fn parse_aliases() {
        let s = parse("SELECT x, SUM(v) AS agg1, AVG(v) agg2 FROM t GROUP BY x").unwrap();
        let q = s.into_query().unwrap();
        assert_eq!(q.aggregates[0].alias, "agg1");
        assert_eq!(q.aggregates[1].alias, "agg2");
    }

    #[test]
    fn parse_and_or_not_parens() {
        let s =
            parse("SELECT c, AVG(v) FROM t WHERE NOT (c = 'x' OR v < 3) AND v <= 10 GROUP BY c")
                .unwrap();
        assert!(matches!(s.predicate.unwrap(), Predicate::And(_, _)));
    }

    #[test]
    fn parse_in_list() {
        let s = parse("SELECT c, AVG(v) FROM t WHERE c IN ('a','b') GROUP BY c").unwrap();
        match s.predicate.unwrap() {
            Predicate::InList { values, .. } => assert_eq!(values.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_year_group_by() {
        let s = parse("SELECT YEAR(t), AVG(v) FROM tab GROUP BY YEAR(t)").unwrap();
        assert_eq!(s.group_by, vec![ScalarExpr::year("t")]);
        assert!(s.into_query().is_ok());
    }

    #[test]
    fn rejects_scalar_not_in_group_by() {
        let s = parse("SELECT major, AVG(gpa) FROM t GROUP BY college").unwrap();
        assert!(s.into_query().is_err());
    }

    #[test]
    fn rejects_no_aggregate() {
        let s = parse("SELECT major FROM t GROUP BY major").unwrap();
        assert!(s.into_query().is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse("SELECT AVG(x) FROM t GROUP BY y zzz qqq").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse("SELECT AVG(x)").is_err());
    }

    #[test]
    fn error_carries_position() {
        let err = parse("SELECT AVG(x) FRM t").unwrap_err();
        match err {
            TableError::Sql { position, .. } => assert!(position.is_some()),
            other => panic!("unexpected {other:?}"),
        }
    }
}

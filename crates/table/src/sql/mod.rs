//! A SQL subset front-end.
//!
//! Supports exactly the query shape the paper's workload uses:
//!
//! ```sql
//! SELECT country, parameter, AVG(value), COUNT_IF(value > 0.5)
//! FROM openaq
//! WHERE HOUR(local_time) BETWEEN 0 AND 12 AND country = 'VN'
//! GROUP BY country, parameter WITH CUBE
//! ```
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! select     := SELECT item ("," item)* FROM ident [WHERE pred]
//!               [GROUP BY scalar ("," scalar)* [WITH CUBE]]
//! item       := agg [AS ident] | scalar [AS ident]
//! agg        := (AVG|SUM|MIN|MAX|VAR|STD) "(" scalar ")"
//!             | COUNT "(" ("*" | scalar) ")"
//!             | COUNT_IF "(" scalar cmp number ")"
//! scalar     := ident | (YEAR|MONTH|DAY|HOUR) "(" ident ")"
//! pred       := and_pred (OR and_pred)*
//! and_pred   := unary (AND unary)*
//! unary      := NOT unary | "(" pred ")" | comparison
//! comparison := scalar cmp literal
//!             | scalar BETWEEN literal AND literal
//!             | scalar IN "(" literal ("," literal)* ")"
//! cmp        := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//! literal    := number | "'" text "'" | TRUE | FALSE
//! ```

mod lexer;
mod parser;

pub use parser::{parse, SelectItem, SelectStmt};

use crate::exec::ExecOptions;
use crate::query::{GroupByQuery, QueryResult};
use crate::shard::ShardedTable;
use crate::table::Table;
use crate::Result;

/// Parse `statement` and lower it to a [`GroupByQuery`].
///
/// The table name in `FROM` is not resolved here — execution binds against
/// whatever [`Table`] you pass to [`run`] or [`GroupByQuery::execute`].
pub fn compile(statement: &str) -> Result<GroupByQuery> {
    parse(statement)?.into_query()
}

/// Parse and execute `statement` against `table` with explicit execution
/// options: a session-level [`ExecOptions`] governs every pass (index
/// build, predicate scan, aggregation), so embedders control worker counts
/// in one place.
pub fn run_with(table: &Table, statement: &str, options: &ExecOptions) -> Result<Vec<QueryResult>> {
    compile(statement)?.execute_with(table, options)
}

/// Parse and execute `statement` against `table` (one worker per core).
pub fn run(table: &Table, statement: &str) -> Result<Vec<QueryResult>> {
    run_with(table, statement, &ExecOptions::default())
}

/// Parse and execute `statement` against a [`ShardedTable`] with explicit
/// execution options. Results are bit-identical to [`run_with`] on the
/// concatenated table (see [`GroupByQuery::execute_sharded`]).
pub fn run_sharded_with(
    table: &ShardedTable,
    statement: &str,
    options: &ExecOptions,
) -> Result<Vec<QueryResult>> {
    compile(statement)?.execute_sharded(table, options)
}

/// Parse and execute `statement` against a [`ShardedTable`] (one worker
/// per core).
pub fn run_sharded(table: &ShardedTable, statement: &str) -> Result<Vec<QueryResult>> {
    run_sharded_with(table, statement, &ExecOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupby::KeyAtom;
    use crate::table::TableBuilder;
    use crate::types::{DataType, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("country", DataType::Str),
            ("parameter", DataType::Str),
            ("value", DataType::Float64),
        ]);
        let rows = [
            ("US", "co", 1.0),
            ("US", "co", 3.0),
            ("US", "bc", 0.5),
            ("VN", "co", 2.0),
            ("VN", "bc", 0.7),
        ];
        for (c, p, v) in rows {
            b.push_row(&[Value::str(c), Value::str(p), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn end_to_end_avg() {
        let t = table();
        let r = run(&t, "SELECT country, AVG(value) FROM t GROUP BY country").unwrap();
        assert_eq!(r.len(), 1);
        let us = r[0].value(&[KeyAtom::from("US")], 0).unwrap();
        assert!((us - 1.5).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_where_and_alias() {
        let t = table();
        let r = run(
            &t,
            "SELECT country, SUM(value) AS total FROM t WHERE parameter = 'co' GROUP BY country",
        )
        .unwrap();
        assert_eq!(r[0].agg_names, vec!["total"]);
        assert_eq!(r[0].value(&[KeyAtom::from("US")], 0), Some(4.0));
        assert_eq!(r[0].value(&[KeyAtom::from("VN")], 0), Some(2.0));
    }

    #[test]
    fn end_to_end_cube() {
        let t = table();
        let r = run(
            &t,
            "SELECT country, parameter, SUM(value) FROM t GROUP BY country, parameter WITH CUBE",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].values[0][0], 7.2);
    }

    #[test]
    fn end_to_end_count_if() {
        let t = table();
        let r = run(&t, "SELECT country, COUNT_IF(value > 0.9) FROM t GROUP BY country").unwrap();
        assert_eq!(r[0].value(&[KeyAtom::from("US")], 0), Some(2.0));
        assert_eq!(r[0].value(&[KeyAtom::from("VN")], 0), Some(1.0));
    }

    #[test]
    fn run_with_matches_run_for_any_thread_count() {
        let t = table();
        let stmt = "SELECT country, AVG(value), COUNT(*) FROM t GROUP BY country";
        let default = run(&t, stmt).unwrap();
        for threads in [1, 2, 8] {
            let r = run_with(&t, stmt, &ExecOptions::new(threads)).unwrap();
            assert_eq!(r[0].keys, default[0].keys);
            assert_eq!(r[0].values, default[0].values);
        }
    }

    #[test]
    fn run_sharded_matches_run() {
        let t = table();
        let st = ShardedTable::split(&t, 3).unwrap();
        let stmt = "SELECT country, AVG(value), COUNT(*) FROM t WHERE value > 0.4 GROUP BY country";
        let reference = run(&t, stmt).unwrap();
        let got = run_sharded(&st, stmt).unwrap();
        assert_eq!(got[0].keys, reference[0].keys);
        assert_eq!(got[0].values, reference[0].values);
    }

    #[test]
    fn full_table_no_group_by() {
        let t = table();
        let r = run(&t, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r[0].values[0][0], 5.0);
    }
}

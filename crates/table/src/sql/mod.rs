//! A SQL subset front-end.
//!
//! Supports exactly the query shape the paper's workload uses:
//!
//! ```sql
//! SELECT country, parameter, AVG(value), COUNT_IF(value > 0.5)
//! FROM openaq
//! WHERE HOUR(local_time) BETWEEN 0 AND 12 AND country = 'VN'
//! GROUP BY country, parameter WITH CUBE
//! ```
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! statement  := [EXPLAIN] select
//! select     := SELECT item ("," item)* FROM ident [join] [WHERE pred]
//!               [GROUP BY expr ("," expr)* [WITH CUBE]]
//! join       := JOIN ident ON ident "." ident "=" ident "." ident
//! item       := agg [[AS] ident] | expr
//! agg        := (AVG|SUM|MIN|MAX|VAR|STD) "(" expr ")"
//!             | COUNT "(" ("*" | expr) ")"
//!             | COUNT_IF "(" expr cmp number ")"
//! expr       := term (("+" | "-") term)*
//! term       := factor (("*" | "/") factor)*
//! factor     := number | "-" number | "(" expr ")" | case
//!             | (YEAR|MONTH|DAY|HOUR) "(" ident ")" | ident
//! case       := CASE (WHEN expr cmp expr THEN expr)+ [ELSE expr] END
//! pred       := and_pred (OR and_pred)*
//! and_pred   := unary (AND unary)*
//! unary      := NOT unary | "(" pred ")" | comparison
//! comparison := expr cmp literal
//!             | expr BETWEEN literal AND literal
//!             | expr IN "(" literal ("," literal)* ")"
//! cmp        := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//! literal    := number | "-" number | "'" text "'" | TRUE | FALSE
//! ```
//!
//! `EXPLAIN` and `JOIN` are parsed here but need a catalog to resolve
//! table names against, so they execute only through an `Engine`
//! (`cvopt-core`); the table-level [`run`]/[`compile`] entry points
//! reject them with a clear error.

mod lexer;
mod parser;

pub use parser::{parse, parse_statement, JoinClause, SelectItem, SelectStmt, Statement};

use crate::exec::ExecOptions;
use crate::query::{GroupByQuery, QueryResult};
use crate::shard::ShardedTable;
use crate::table::Table;
use crate::Result;

/// Parse `statement` and lower it to a [`GroupByQuery`].
///
/// The table name in `FROM` is not resolved here — execution binds against
/// whatever [`Table`] you pass to [`run`] or [`GroupByQuery::execute`].
pub fn compile(statement: &str) -> Result<GroupByQuery> {
    let stmt = parse(statement)?;
    if stmt.join.is_some() {
        return Err(crate::error::TableError::sql(
            "JOIN queries need a table catalog to resolve against; run them through an Engine",
            None,
        ));
    }
    stmt.into_query()
}

/// A session-level execution context for the SQL front-end: one
/// [`ExecOptions`] that governs every pass (index build, predicate scan,
/// aggregation) of every statement run through it, so embedders — the
/// serving layer carves its per-request worker budgets exactly this way —
/// control worker counts in one place instead of per call.
///
/// Results never depend on the thread count (the execution layer's
/// determinism contract), so the choice is purely a deployment concern.
///
/// ```
/// use cvopt_table::{sql, DataType, ExecOptions, TableBuilder, Value};
///
/// let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
/// b.push_row(&[Value::str("a"), Value::Float64(1.0)]).unwrap();
/// b.push_row(&[Value::str("a"), Value::Float64(3.0)]).unwrap();
/// let table = b.finish();
///
/// let session = sql::Session::with_exec(ExecOptions::new(2));
/// let results = session.run(&table, "SELECT g, AVG(x) FROM t GROUP BY g").unwrap();
/// assert_eq!(results[0].values[0][0], 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Session {
    exec: ExecOptions,
}

impl Session {
    /// A session with one worker per available core.
    pub fn new() -> Self {
        Session::default()
    }

    /// A session with explicit execution options.
    pub fn with_exec(exec: ExecOptions) -> Self {
        Session { exec }
    }

    /// The execution options every statement of this session runs under.
    pub fn exec(&self) -> &ExecOptions {
        &self.exec
    }

    /// Parse and execute `statement` against `table` under the session's
    /// execution options.
    pub fn run(&self, table: &Table, statement: &str) -> Result<Vec<QueryResult>> {
        compile(statement)?.execute_with(table, &self.exec)
    }

    /// Parse and execute `statement` against a [`ShardedTable`] under the
    /// session's execution options. Results are bit-identical to
    /// [`Session::run`] on the concatenated table (see
    /// [`GroupByQuery::execute_sharded`]).
    pub fn run_sharded(&self, table: &ShardedTable, statement: &str) -> Result<Vec<QueryResult>> {
        compile(statement)?.execute_sharded(table, &self.exec)
    }
}

/// Parse and execute `statement` against `table` with explicit execution
/// options (a one-statement [`Session`]).
pub fn run_with(table: &Table, statement: &str, options: &ExecOptions) -> Result<Vec<QueryResult>> {
    Session::with_exec(*options).run(table, statement)
}

/// Parse and execute `statement` against `table` (one worker per core).
pub fn run(table: &Table, statement: &str) -> Result<Vec<QueryResult>> {
    Session::new().run(table, statement)
}

/// Parse and execute `statement` against a [`ShardedTable`] with explicit
/// execution options (a one-statement [`Session`]).
pub fn run_sharded_with(
    table: &ShardedTable,
    statement: &str,
    options: &ExecOptions,
) -> Result<Vec<QueryResult>> {
    Session::with_exec(*options).run_sharded(table, statement)
}

/// Parse and execute `statement` against a [`ShardedTable`] (one worker
/// per core).
pub fn run_sharded(table: &ShardedTable, statement: &str) -> Result<Vec<QueryResult>> {
    Session::new().run_sharded(table, statement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupby::KeyAtom;
    use crate::table::TableBuilder;
    use crate::types::{DataType, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("country", DataType::Str),
            ("parameter", DataType::Str),
            ("value", DataType::Float64),
        ]);
        let rows = [
            ("US", "co", 1.0),
            ("US", "co", 3.0),
            ("US", "bc", 0.5),
            ("VN", "co", 2.0),
            ("VN", "bc", 0.7),
        ];
        for (c, p, v) in rows {
            b.push_row(&[Value::str(c), Value::str(p), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn end_to_end_avg() {
        let t = table();
        let r = run(&t, "SELECT country, AVG(value) FROM t GROUP BY country").unwrap();
        assert_eq!(r.len(), 1);
        let us = r[0].value(&[KeyAtom::from("US")], 0).unwrap();
        assert!((us - 1.5).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_where_and_alias() {
        let t = table();
        let r = run(
            &t,
            "SELECT country, SUM(value) AS total FROM t WHERE parameter = 'co' GROUP BY country",
        )
        .unwrap();
        assert_eq!(r[0].agg_names, vec!["total"]);
        assert_eq!(r[0].value(&[KeyAtom::from("US")], 0), Some(4.0));
        assert_eq!(r[0].value(&[KeyAtom::from("VN")], 0), Some(2.0));
    }

    #[test]
    fn end_to_end_cube() {
        let t = table();
        let r = run(
            &t,
            "SELECT country, parameter, SUM(value) FROM t GROUP BY country, parameter WITH CUBE",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].values[0][0], 7.2);
    }

    #[test]
    fn end_to_end_count_if() {
        let t = table();
        let r = run(&t, "SELECT country, COUNT_IF(value > 0.9) FROM t GROUP BY country").unwrap();
        assert_eq!(r[0].value(&[KeyAtom::from("US")], 0), Some(2.0));
        assert_eq!(r[0].value(&[KeyAtom::from("VN")], 0), Some(1.0));
    }

    #[test]
    fn run_with_matches_run_for_any_thread_count() {
        let t = table();
        let stmt = "SELECT country, AVG(value), COUNT(*) FROM t GROUP BY country";
        let default = run(&t, stmt).unwrap();
        for threads in [1, 2, 8] {
            let r = run_with(&t, stmt, &ExecOptions::new(threads)).unwrap();
            assert_eq!(r[0].keys, default[0].keys);
            assert_eq!(r[0].values, default[0].values);
        }
    }

    #[test]
    fn run_sharded_matches_run() {
        let t = table();
        let st = ShardedTable::split(&t, 3).unwrap();
        let stmt = "SELECT country, AVG(value), COUNT(*) FROM t WHERE value > 0.4 GROUP BY country";
        let reference = run(&t, stmt).unwrap();
        let got = run_sharded(&st, stmt).unwrap();
        assert_eq!(got[0].keys, reference[0].keys);
        assert_eq!(got[0].values, reference[0].values);
    }

    #[test]
    fn session_matches_free_functions_for_any_thread_count() {
        let t = table();
        let st = ShardedTable::split(&t, 2).unwrap();
        let stmt = "SELECT country, AVG(value), COUNT(*) FROM t WHERE value > 0.4 GROUP BY country";
        let reference = run(&t, stmt).unwrap();
        for threads in [1usize, 3, 8] {
            let session = Session::with_exec(ExecOptions::new(threads));
            assert_eq!(session.exec().threads(), threads);
            let got = session.run(&t, stmt).unwrap();
            assert_eq!(got[0].keys, reference[0].keys);
            assert_eq!(got[0].values, reference[0].values);
            let sharded = session.run_sharded(&st, stmt).unwrap();
            assert_eq!(sharded[0].keys, reference[0].keys);
            assert_eq!(sharded[0].values, reference[0].values);
        }
    }

    #[test]
    fn full_table_no_group_by() {
        let t = table();
        let r = run(&t, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r[0].values[0][0], 5.0);
    }
}

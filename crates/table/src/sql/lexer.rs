//! SQL tokenizer.

use crate::error::TableError;
use crate::Result;

/// A lexical token with its byte position in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original casing preserved).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Whether this token is the (case-insensitive) keyword `kw`.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a statement. The result always ends with [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: start });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: start });
                i += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: start });
                i += 1;
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, pos: start });
                i += 1;
            }
            b'+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos: start });
                i += 1;
            }
            b'-' => {
                tokens.push(Token { kind: TokenKind::Minus, pos: start });
                i += 1;
            }
            b'/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos: start });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, pos: start });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, pos: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Ne, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, pos: start });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos: start });
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, pos: start });
                    i += 2;
                } else {
                    return Err(TableError::sql("unexpected '!'", Some(start)));
                }
            }
            b'\'' => {
                i += 1;
                let content_start = i;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(TableError::sql("unterminated string literal", Some(start)));
                }
                let s = &input[content_start..i];
                tokens.push(Token { kind: TokenKind::Str(s.to_string()), pos: start });
                i += 1;
            }
            b'.' if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                // A bare '.' is the qualified-name separator; '.5' is a
                // number.
                tokens.push(Token { kind: TokenKind::Dot, pos: start });
                i += 1;
            }
            b'0'..=b'9' | b'.' => {
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| TableError::sql(format!("bad number {text:?}"), Some(start)))?;
                tokens.push(Token { kind: TokenKind::Number(value), pos: start });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(TableError::sql(
                    format!("unexpected character {:?}", other as char),
                    Some(start),
                ));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: input.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, AVG(b) FROM t"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("AVG".into()),
                TokenKind::LParen,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= *"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Star,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("0.04"), vec![TokenKind::Number(0.04), TokenKind::Eof]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
        // '-' is always an operator token; the parser folds it into
        // negative literals where the grammar allows one.
        assert_eq!(kinds("-3"), vec![TokenKind::Minus, TokenKind::Number(3.0), TokenKind::Eof]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number(0.001), TokenKind::Eof]);
        assert_eq!(kinds("2.5E2"), vec![TokenKind::Number(250.0), TokenKind::Eof]);
    }

    #[test]
    fn arithmetic_and_dot() {
        assert_eq!(
            kinds("a + b - c * 2 / d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Plus,
                TokenKind::Ident("b".into()),
                TokenKind::Minus,
                TokenKind::Ident("c".into()),
                TokenKind::Star,
                TokenKind::Number(2.0),
                TokenKind::Slash,
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(
            kinds("fact.k"),
            vec![
                TokenKind::Ident("fact".into()),
                TokenKind::Dot,
                TokenKind::Ident("k".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(kinds("'VN'"), vec![TokenKind::Str("VN".into()), TokenKind::Eof]);
        assert_eq!(kinds("''"), vec![TokenKind::Str(String::new()), TokenKind::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn bad_character_errors() {
        assert!(tokenize("a ; b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_check_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].kind.is_keyword("SELECT"));
        assert!(toks[0].kind.is_keyword("select"));
        assert!(!toks[0].kind.is_keyword("FROM"));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 4);
    }
}

//! Civil-calendar conversions for epoch-second timestamps.
//!
//! Implements the days-from-civil / civil-from-days algorithms of Howard
//! Hinnant (public domain), which are exact for the proleptic Gregorian
//! calendar over the full `i64` day range we care about.

/// A broken-down UTC date-time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilDateTime {
    /// Calendar year (e.g. 2018).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

/// Days since 1970-01-01 for a civil date.
pub fn days_from_civil(year: i32, month: u8, day: u8) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01.
pub fn civil_from_days(days: i64) -> (i32, u8, u8) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

/// Epoch seconds for a civil date-time (UTC).
pub fn epoch_seconds(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> i64 {
    days_from_civil(year, month, day) * 86_400
        + i64::from(hour) * 3_600
        + i64::from(minute) * 60
        + i64::from(second)
}

/// Broken-down UTC date-time for epoch seconds.
pub fn civil_from_epoch(secs: i64) -> CivilDateTime {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    CivilDateTime {
        year,
        month,
        day,
        hour: (rem / 3_600) as u8,
        minute: ((rem % 3_600) / 60) as u8,
        second: (rem % 60) as u8,
    }
}

/// Calendar year of an epoch-second timestamp.
#[inline]
pub fn year_of(secs: i64) -> i64 {
    i64::from(civil_from_epoch(secs).year)
}

/// Month (1–12) of an epoch-second timestamp.
#[inline]
pub fn month_of(secs: i64) -> i64 {
    i64::from(civil_from_epoch(secs).month)
}

/// Day of month (1–31) of an epoch-second timestamp.
#[inline]
pub fn day_of(secs: i64) -> i64 {
    i64::from(civil_from_epoch(secs).day)
}

/// Hour of day (0–23) of an epoch-second timestamp.
#[inline]
pub fn hour_of(secs: i64) -> i64 {
    secs.rem_euclid(86_400) / 3_600
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(epoch_seconds(1970, 1, 1, 0, 0, 0), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 2018-06-15 is day 17697 (verified against `date -d @...`).
        assert_eq!(days_from_civil(2018, 6, 15), 17_697);
        assert_eq!(civil_from_days(17_697), (2018, 6, 15));
        // Leap day.
        assert_eq!(civil_from_days(days_from_civil(2016, 2, 29)), (2016, 2, 29));
        // Pre-epoch.
        assert_eq!(civil_from_days(days_from_civil(1969, 12, 31)), (1969, 12, 31));
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn extractors() {
        let t = epoch_seconds(2017, 11, 3, 14, 25, 36);
        assert_eq!(year_of(t), 2017);
        assert_eq!(month_of(t), 11);
        assert_eq!(day_of(t), 3);
        assert_eq!(hour_of(t), 14);
        let c = civil_from_epoch(t);
        assert_eq!((c.minute, c.second), (25, 36));
    }

    #[test]
    fn negative_seconds() {
        let t = epoch_seconds(1969, 12, 31, 23, 0, 0);
        assert!(t < 0);
        assert_eq!(year_of(t), 1969);
        assert_eq!(hour_of(t), 23);
    }

    proptest! {
        #[test]
        fn civil_days_round_trip(days in -1_000_000i64..1_000_000i64) {
            let (y, m, d) = civil_from_days(days);
            prop_assert_eq!(days_from_civil(y, m, d), days);
            prop_assert!((1..=12).contains(&m));
            prop_assert!((1..=31).contains(&d));
        }

        #[test]
        fn epoch_round_trip(secs in -50_000_000_000i64..50_000_000_000i64) {
            let c = civil_from_epoch(secs);
            let back = epoch_seconds(c.year, c.month, c.day, c.hour, c.minute, c.second);
            prop_assert_eq!(back, secs);
        }
    }
}

//! Exact group-by query execution.
//!
//! [`GroupByQuery::execute`] computes exact answers (the experiments' ground
//! truth). The executor accumulates per-finest-group [`AggState`]s in one
//! pass and then *merges* them through group projections for cube grouping
//! sets, so a `WITH CUBE` over k attributes still scans the data once.

use crate::agg::{AggExpr, AggKind, AggState};
use crate::bitmap::Bitmap;
use crate::cube::grouping_sets;
use crate::exec::{self, ExecOptions, RowRange};
use crate::expr::{BoundExpr, ScalarExpr};
use crate::fxhash::FxHashMap;
use crate::groupby::{GroupIndex, KeyAtom};
use crate::predicate::Predicate;
use crate::reader::{ColumnValues, ShardSet};
use crate::shard::ShardedTable;
use crate::table::Table;
use crate::Result;

/// A group-by query specification.
#[derive(Debug, Clone)]
pub struct GroupByQuery {
    /// Grouping expressions (empty for a full-table aggregate).
    pub group_by: Vec<ScalarExpr>,
    /// Aggregates to compute per group.
    pub aggregates: Vec<AggExpr>,
    /// Optional row filter applied before grouping.
    pub predicate: Option<Predicate>,
    /// Whether to expand `GROUP BY ... WITH CUBE`.
    pub cube: bool,
}

impl GroupByQuery {
    /// Query with the given grouping expressions and aggregates.
    pub fn new(group_by: Vec<ScalarExpr>, aggregates: Vec<AggExpr>) -> Self {
        GroupByQuery { group_by, aggregates, predicate: None, cube: false }
    }

    /// Add a predicate.
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Enable `WITH CUBE`.
    pub fn with_cube(mut self) -> Self {
        self.cube = true;
        self
    }

    /// Execute exactly against `table`, using one worker per available
    /// core (see [`GroupByQuery::execute_with`]).
    ///
    /// Returns one [`QueryResult`] per grouping set: a single result unless
    /// `cube` is set, in which case the sets follow [`grouping_sets`] order.
    pub fn execute(&self, table: &Table) -> Result<Vec<QueryResult>> {
        self.execute_with(table, &ExecOptions::default())
    }

    /// Execute with explicit execution options. The group-index build, the
    /// predicate scan, and the aggregation pass are all chunk-parallel;
    /// results are identical for any thread count (partial aggregates merge
    /// in partition order).
    pub fn execute_with(&self, table: &Table, options: &ExecOptions) -> Result<Vec<QueryResult>> {
        let index = GroupIndex::build_with(table, &self.group_by, options)?;
        let filter = match &self.predicate {
            Some(p) => Some(p.bind(table)?.eval_bitmap_with(table.num_rows(), options)),
            None => None,
        };
        let fine = accumulate(table, &index, &self.aggregates, filter.as_ref(), options)?;
        Ok(self.finish(&index, &fine))
    }

    /// Execute exactly against a [`ShardedTable`]. The group index, the
    /// predicate bitmaps, and the aggregation pass all run shard-parallel;
    /// because aggregation partials are whole *global* partitions (each
    /// assembled from the shard segments covering it) merged in partition
    /// order, the results are **bit-identical to
    /// [`GroupByQuery::execute_with`] on the concatenated table** for any
    /// shard layout and thread count.
    pub fn execute_sharded(
        &self,
        table: &ShardedTable,
        options: &ExecOptions,
    ) -> Result<Vec<QueryResult>> {
        let index = GroupIndex::build_sharded(table, &self.group_by, options)?;
        let filters = match &self.predicate {
            Some(p) => Some(p.eval_sharded(table, options)?),
            None => None,
        };
        let fine =
            accumulate_sharded(table, &index, &self.aggregates, filters.as_deref(), options)?;
        Ok(self.finish(&index, &fine))
    }

    /// Execute exactly against a [`ShardSet`] — the scatter-gather form of
    /// [`GroupByQuery::execute_sharded`] over the [`crate::reader`] pass
    /// surface, so shards may be local, remote, or mixed. The group index
    /// merges shard windows in shard order, predicate bitmaps arrive per
    /// shard, and the aggregation pass reads per-row values through
    /// [`ColumnValues`] while still accumulating whole **global**
    /// partitions in partition order — so the results are **bit-identical
    /// to [`GroupByQuery::execute_sharded`] on a local table with the same
    /// layout**, for any thread count.
    pub fn execute_set(&self, set: &ShardSet, options: &ExecOptions) -> Result<Vec<QueryResult>> {
        let index = set.build_group_index(&self.group_by, options)?;
        let filters = match &self.predicate {
            Some(p) => Some(set.eval_predicate(p, options)?),
            None => None,
        };
        let fine = accumulate_set(set, &index, &self.aggregates, filters.as_deref(), options)?;
        Ok(self.finish(&index, &fine))
    }

    /// Shared back half of both executors: expand grouping sets and merge
    /// the finest-group states onto each one.
    fn finish(&self, index: &GroupIndex, fine: &[Vec<AggState>]) -> Vec<QueryResult> {
        let sets: Vec<Vec<usize>> = if self.cube {
            grouping_sets(self.group_by.len())
        } else {
            vec![(0..self.group_by.len()).collect()]
        };

        let agg_names: Vec<String> = self.aggregates.iter().map(|a| a.alias.clone()).collect();
        let mut results = Vec::with_capacity(sets.len());
        for dims in &sets {
            results.push(coarsen(index, fine, dims, &self.aggregates, &agg_names));
        }
        results
    }
}

/// Feed one row into a group's aggregate slots. `row` indexes the storage
/// the expressions in `bound` were bound against (the whole table for the
/// single-table executor, one shard for the sharded one). Shared by both
/// executors so their numeric behavior cannot drift apart.
#[inline]
fn update_group_states(
    group_states: &mut [AggState],
    aggregates: &[AggExpr],
    bound: &[Option<BoundExpr<'_>>],
    row: usize,
) {
    for (slot, (agg, expr)) in group_states.iter_mut().zip(aggregates.iter().zip(bound)) {
        let value = match (agg.kind, expr) {
            (AggKind::Count, _) => 1.0,
            (AggKind::CountIf, Some(e)) => {
                let (op, threshold) = agg.condition.expect("COUNT_IF has a condition");
                let v = e.f64_at(row).unwrap_or(f64::NAN);
                if op.evaluate_f64(v, threshold) {
                    1.0
                } else {
                    0.0
                }
            }
            (_, Some(e)) => match e.f64_at(row) {
                Some(v) => v,
                None => continue,
            },
            (_, None) => continue,
        };
        slot.update(value);
    }
}

/// Accumulate one `AggState` per (finest group, aggregate), chunk-parallel
/// with an in-order merge of the per-partition partials.
fn accumulate(
    table: &Table,
    index: &GroupIndex,
    aggregates: &[AggExpr],
    filter: Option<&Bitmap>,
    options: &ExecOptions,
) -> Result<Vec<Vec<AggState>>> {
    let bound: Vec<Option<BoundExpr<'_>>> = aggregates
        .iter()
        .map(|a| a.input.as_ref().map(|e| e.bind(table)).transpose())
        .collect::<Result<_>>()?;

    let accumulate_range = |range: RowRange| {
        let mut states = vec![vec![AggState::default(); aggregates.len()]; index.num_groups()];
        let mut update_row = |row: usize| {
            let group_states = &mut states[index.group_of(row) as usize];
            update_group_states(group_states, aggregates, &bound, row);
        };
        match filter {
            Some(bm) => {
                for row in bm.iter_ones_in(range.start, range.end) {
                    update_row(row);
                }
            }
            None => {
                for row in range.rows() {
                    update_row(row);
                }
            }
        }
        states
    };

    Ok(exec::fold_partitioned(
        table.num_rows(),
        options,
        |_, range| accumulate_range(range),
        |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
    ))
}

/// [`accumulate`] over a sharded table. Partials are still whole **global**
/// partitions — each one walks the shard segments that cover it, reading
/// values through that shard's bound expressions — so every partial's
/// accumulation chain visits the same rows in the same order as the
/// single-table pass, and the partition-order merge makes the result
/// bit-identical to it regardless of where shard boundaries fall.
fn accumulate_sharded(
    table: &ShardedTable,
    index: &GroupIndex,
    aggregates: &[AggExpr],
    filters: Option<&[Bitmap]>,
    options: &ExecOptions,
) -> Result<Vec<Vec<AggState>>> {
    let bound: Vec<Vec<Option<BoundExpr<'_>>>> = table
        .shards()
        .iter()
        .map(|shard| {
            aggregates
                .iter()
                .map(|a| a.input.as_ref().map(|e| e.bind(shard)).transpose())
                .collect::<Result<_>>()
        })
        .collect::<Result<_>>()?;

    Ok(exec::fold_partitioned(
        table.num_rows(),
        options,
        |_, range| {
            let mut states = vec![vec![AggState::default(); aggregates.len()]; index.num_groups()];
            for seg in table.segments(range) {
                let shard_bound = &bound[seg.shard];
                // Global row id of shard-local row `r` is `r + delta`.
                let delta = seg.global_start - seg.local.start;
                let mut update_row = |local_row: usize| {
                    let group = index.group_of(local_row + delta) as usize;
                    update_group_states(&mut states[group], aggregates, shard_bound, local_row);
                };
                match filters {
                    Some(bms) => {
                        for local_row in bms[seg.shard].iter_ones_in(seg.local.start, seg.local.end)
                        {
                            update_row(local_row);
                        }
                    }
                    None => {
                        for local_row in seg.local.rows() {
                            update_row(local_row);
                        }
                    }
                }
            }
            states
        },
        |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
    ))
}

/// [`update_group_states`] reading rows through shipped [`ColumnValues`]
/// instead of locally-bound expressions. `ColumnValues::get` reproduces the
/// shard-side `f64_at` bit for bit, so the two update paths feed identical
/// values into identical [`AggState`] chains.
#[inline]
fn update_group_states_values(
    group_states: &mut [AggState],
    aggregates: &[AggExpr],
    values: &[Option<ColumnValues>],
    row: usize,
) {
    for (slot, (agg, column)) in group_states.iter_mut().zip(aggregates.iter().zip(values)) {
        let value = match (agg.kind, column) {
            (AggKind::Count, _) => 1.0,
            (AggKind::CountIf, Some(col)) => {
                let (op, threshold) = agg.condition.expect("COUNT_IF has a condition");
                let v = col.get(row).unwrap_or(f64::NAN);
                if op.evaluate_f64(v, threshold) {
                    1.0
                } else {
                    0.0
                }
            }
            (_, Some(col)) => match col.get(row) {
                Some(v) => v,
                None => continue,
            },
            (_, None) => continue,
        };
        slot.update(value);
    }
}

/// [`accumulate_sharded`] over a [`ShardSet`]: one `expr_values` request
/// per shard up front, then the identical global-partition walk with
/// [`update_group_states_values`] in place of bound expressions.
fn accumulate_set(
    set: &ShardSet,
    index: &GroupIndex,
    aggregates: &[AggExpr],
    filters: Option<&[Bitmap]>,
    options: &ExecOptions,
) -> Result<Vec<Vec<AggState>>> {
    let exprs: Vec<Option<ScalarExpr>> = aggregates.iter().map(|a| a.input.clone()).collect();
    let values = set.fetch_values(&exprs, options)?;

    Ok(exec::fold_partitioned(
        set.num_rows(),
        options,
        |_, range| {
            let mut states = vec![vec![AggState::default(); aggregates.len()]; index.num_groups()];
            for seg in set.segments(range) {
                let shard_values = &values[seg.shard];
                // Global row id of shard-local row `r` is `r + delta`.
                let delta = seg.global_start - seg.local.start;
                let mut update_row = |local_row: usize| {
                    let group = index.group_of(local_row + delta) as usize;
                    update_group_states_values(
                        &mut states[group],
                        aggregates,
                        shard_values,
                        local_row,
                    );
                };
                match filters {
                    Some(bms) => {
                        for local_row in bms[seg.shard].iter_ones_in(seg.local.start, seg.local.end)
                        {
                            update_row(local_row);
                        }
                    }
                    None => {
                        for local_row in seg.local.rows() {
                            update_row(local_row);
                        }
                    }
                }
            }
            states
        },
        |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
    ))
}

/// Merge finest-group states onto the grouping set `dims` and finalize.
fn coarsen(
    index: &GroupIndex,
    fine: &[Vec<AggState>],
    dims: &[usize],
    aggregates: &[AggExpr],
    agg_names: &[String],
) -> QueryResult {
    let proj = index.project(dims);
    let mut merged = vec![vec![AggState::default(); aggregates.len()]; proj.num_groups()];
    for (fine_gid, states) in fine.iter().enumerate() {
        let cid = proj.coarse_of(fine_gid as u32) as usize;
        for (slot, s) in merged[cid].iter_mut().zip(states) {
            slot.merge(s);
        }
    }

    // Keep only groups with at least one accumulated row, in sorted key order.
    let mut rows: Vec<(Vec<KeyAtom>, Vec<f64>, u64)> = Vec::new();
    for (cid, states) in merged.iter().enumerate() {
        let group_rows = states.iter().map(|s| s.count).max().unwrap_or(0);
        if group_rows == 0 {
            continue;
        }
        let values = states.iter().zip(aggregates).map(|(s, a)| s.finalize(a.kind)).collect();
        rows.push((proj.key(cid as u32).to_vec(), values, group_rows));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    let mut result = QueryResult {
        grouping: proj.dim_names().to_vec(),
        agg_names: agg_names.to_vec(),
        keys: Vec::with_capacity(rows.len()),
        values: Vec::with_capacity(rows.len()),
        group_rows: Vec::with_capacity(rows.len()),
        key_index: FxHashMap::default(),
    };
    for (key, values, nrows) in rows {
        result.key_index.insert(key.clone(), result.keys.len());
        result.keys.push(key);
        result.values.push(values);
        result.group_rows.push(nrows);
    }
    result
}

/// The result of one grouping set: a small column-oriented result table.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Names of the grouping dimensions of this set.
    pub grouping: Vec<String>,
    /// Aggregate output labels.
    pub agg_names: Vec<String>,
    /// Group keys, sorted.
    pub keys: Vec<Vec<KeyAtom>>,
    /// `values[group][aggregate]`.
    pub values: Vec<Vec<f64>>,
    /// Rows that contributed to each group (post-predicate).
    pub group_rows: Vec<u64>,
    key_index: FxHashMap<Vec<KeyAtom>, usize>,
}

impl QueryResult {
    /// Assemble a result from parts (used by sample-based estimators that
    /// mirror the exact executor's output shape). Rows are sorted by key.
    pub fn from_parts(
        grouping: Vec<String>,
        agg_names: Vec<String>,
        mut rows: Vec<(Vec<KeyAtom>, Vec<f64>, u64)>,
    ) -> Self {
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let mut result = QueryResult {
            grouping,
            agg_names,
            keys: Vec::with_capacity(rows.len()),
            values: Vec::with_capacity(rows.len()),
            group_rows: Vec::with_capacity(rows.len()),
            key_index: FxHashMap::default(),
        };
        for (key, values, nrows) in rows {
            result.key_index.insert(key.clone(), result.keys.len());
            result.keys.push(key);
            result.values.push(values);
            result.group_rows.push(nrows);
        }
        result
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// Number of aggregates.
    pub fn num_aggregates(&self) -> usize {
        self.agg_names.len()
    }

    /// Row index of `key`, if present.
    pub fn group_position(&self, key: &[KeyAtom]) -> Option<usize> {
        self.key_index.get(key).copied()
    }

    /// The value of aggregate `agg_idx` for group `key`, if present.
    pub fn value(&self, key: &[KeyAtom], agg_idx: usize) -> Option<f64> {
        self.group_position(key).map(|pos| self.values[pos][agg_idx])
    }

    /// Iterate `(key, values)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[KeyAtom], &[f64])> {
        self.keys.iter().map(|k| k.as_slice()).zip(self.values.iter().map(|v| v.as_slice()))
    }

    /// Render as an aligned text table (for examples and reports).
    pub fn to_text(&self) -> String {
        let mut header: Vec<String> = self.grouping.clone();
        header.extend(self.agg_names.iter().cloned());
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.keys.len());
        for (key, values) in self.iter() {
            let mut row: Vec<String> = key.iter().map(|a| a.to_string()).collect();
            row.extend(values.iter().map(|v| format!("{v:.4}")));
            rows.push(row);
        }
        render_text_table(&header, &rows)
    }
}

/// Align a header and rows into a text table.
pub fn render_text_table(header: &[String], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        out.push('\n');
    };
    emit_row(&mut out, header);
    let sep: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
    emit_row(&mut out, &sep);
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::table::TableBuilder;
    use crate::types::{DataType, Value};

    /// The paper's example Student table (Table 1).
    pub(crate) fn student_table() -> Table {
        let mut b = TableBuilder::new(&[
            ("id", DataType::Int64),
            ("age", DataType::Int64),
            ("gpa", DataType::Float64),
            ("sat", DataType::Int64),
            ("major", DataType::Str),
            ("college", DataType::Str),
        ]);
        let rows: [(i64, i64, f64, i64, &str, &str); 8] = [
            (1, 25, 3.4, 1250, "CS", "Science"),
            (2, 22, 3.1, 1280, "CS", "Science"),
            (3, 24, 3.8, 1230, "Math", "Science"),
            (4, 28, 3.6, 1270, "Math", "Science"),
            (5, 21, 3.5, 1210, "EE", "Engineering"),
            (6, 23, 3.2, 1260, "EE", "Engineering"),
            (7, 27, 3.7, 1220, "ME", "Engineering"),
            (8, 26, 3.3, 1230, "ME", "Engineering"),
        ];
        for (id, age, gpa, sat, major, college) in rows {
            b.push_row(&[
                Value::Int64(id),
                Value::Int64(age),
                Value::Float64(gpa),
                Value::Int64(sat),
                Value::str(major),
                Value::str(college),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn avg_gpa_by_major() {
        let t = student_table();
        let q = GroupByQuery::new(vec![ScalarExpr::col("major")], vec![AggExpr::avg("gpa")]);
        let r = &q.execute(&t).unwrap()[0];
        assert_eq!(r.num_groups(), 4);
        let cs = r.value(&[KeyAtom::from("CS")], 0).unwrap();
        assert!((cs - 3.25).abs() < 1e-12);
        let math = r.value(&[KeyAtom::from("Math")], 0).unwrap();
        assert!((math - 3.7).abs() < 1e-12);
    }

    #[test]
    fn multiple_aggregates() {
        let t = student_table();
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("college")],
            vec![
                AggExpr::count(),
                AggExpr::sum("sat"),
                AggExpr::min("age"),
                AggExpr::max("age"),
                AggExpr::avg("age"),
            ],
        );
        let r = &q.execute(&t).unwrap()[0];
        let sci = r.group_position(&[KeyAtom::from("Science")]).unwrap();
        assert_eq!(r.values[sci][0], 4.0);
        assert_eq!(r.values[sci][1], 5030.0);
        assert_eq!(r.values[sci][2], 22.0);
        assert_eq!(r.values[sci][3], 28.0);
        assert!((r.values[sci][4] - 24.75).abs() < 1e-12);
    }

    #[test]
    fn predicate_filters_groups() {
        let t = student_table();
        let q = GroupByQuery::new(vec![ScalarExpr::col("major")], vec![AggExpr::avg("gpa")])
            .with_predicate(Predicate::cmp("college", CmpOp::Eq, "Science"));
        let r = &q.execute(&t).unwrap()[0];
        assert_eq!(r.num_groups(), 2); // EE/ME filtered out entirely
        assert!(r.value(&[KeyAtom::from("EE")], 0).is_none());
    }

    #[test]
    fn count_if() {
        let t = student_table();
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("college")],
            vec![AggExpr::count_if("gpa", CmpOp::Gt, 3.45)],
        );
        let r = &q.execute(&t).unwrap()[0];
        // Science: 3.8, 3.6 → 2; Engineering: 3.5, 3.7 → 2.
        assert_eq!(r.value(&[KeyAtom::from("Science")], 0), Some(2.0));
        assert_eq!(r.value(&[KeyAtom::from("Engineering")], 0), Some(2.0));
    }

    #[test]
    fn full_table_aggregate() {
        let t = student_table();
        let q = GroupByQuery::new(vec![], vec![AggExpr::avg("gpa"), AggExpr::count()]);
        let r = &q.execute(&t).unwrap()[0];
        assert_eq!(r.num_groups(), 1);
        assert!((r.values[0][0] - 3.45).abs() < 1e-12);
        assert_eq!(r.values[0][1], 8.0);
    }

    #[test]
    fn cube_produces_all_grouping_sets() {
        let t = student_table();
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("major"), ScalarExpr::col("college")],
            vec![AggExpr::sum("sat")],
        )
        .with_cube();
        let results = q.execute(&t).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].grouping, vec!["major", "college"]);
        assert_eq!(results[0].num_groups(), 4);
        assert_eq!(results[1].grouping, vec!["major"]);
        assert_eq!(results[1].num_groups(), 4);
        assert_eq!(results[2].grouping, vec!["college"]);
        assert_eq!(results[2].num_groups(), 2);
        assert_eq!(results[3].grouping, Vec::<String>::new());
        assert_eq!(results[3].num_groups(), 1);
        // Totals agree across grouping sets.
        let full: f64 = results[3].values[0][0];
        let by_major: f64 = results[1].values.iter().map(|v| v[0]).sum();
        assert!((full - by_major).abs() < 1e-9);
    }

    #[test]
    fn cube_variance_merge_is_exact() {
        let t = student_table();
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("major"), ScalarExpr::col("college")],
            vec![AggExpr::var("gpa")],
        )
        .with_cube();
        let results = q.execute(&t).unwrap();
        // Full-table variance from the cube's empty grouping set must match a
        // direct full-table query.
        let direct = GroupByQuery::new(vec![], vec![AggExpr::var("gpa")]);
        let direct_var = direct.execute(&t).unwrap()[0].values[0][0];
        let cube_var = results[3].values[0][0];
        assert!((direct_var - cube_var).abs() < 1e-12);
    }

    #[test]
    fn result_iter_sorted() {
        let t = student_table();
        let q = GroupByQuery::new(vec![ScalarExpr::col("major")], vec![AggExpr::count()]);
        let r = &q.execute(&t).unwrap()[0];
        let keys: Vec<String> = r.iter().map(|(k, _)| k[0].to_string()).collect();
        assert_eq!(keys, vec!["CS", "EE", "ME", "Math"]); // KeyAtom sort order
    }

    #[test]
    fn to_text_renders() {
        let t = student_table();
        let q = GroupByQuery::new(vec![ScalarExpr::col("college")], vec![AggExpr::count()]);
        let r = &q.execute(&t).unwrap()[0];
        let text = r.to_text();
        assert!(text.contains("college"));
        assert!(text.contains("Engineering"));
        assert!(text.contains("4.0000"));
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_single_table() {
        let t = student_table();
        let queries = [
            GroupByQuery::new(
                vec![ScalarExpr::col("major")],
                vec![AggExpr::avg("gpa"), AggExpr::count(), AggExpr::var("sat")],
            ),
            GroupByQuery::new(vec![ScalarExpr::col("college")], vec![AggExpr::sum("sat")])
                .with_predicate(Predicate::cmp("gpa", CmpOp::Ge, 3.3)),
            GroupByQuery::new(
                vec![ScalarExpr::col("major"), ScalarExpr::col("college")],
                vec![AggExpr::avg("gpa")],
            )
            .with_cube(),
        ];
        for q in &queries {
            let reference = q.execute_with(&t, &ExecOptions::sequential()).unwrap();
            for num_shards in [1usize, 2, 3, 5] {
                let st = ShardedTable::split(&t, num_shards).unwrap();
                for threads in [1usize, 4] {
                    let got = q.execute_sharded(&st, &ExecOptions::new(threads)).unwrap();
                    assert_eq!(got.len(), reference.len());
                    for (g, r) in got.iter().zip(&reference) {
                        assert_eq!(g.keys, r.keys, "shards {num_shards}, threads {threads}");
                        assert_eq!(g.group_rows, r.group_rows);
                        for (a, b) in g.values.iter().zip(&r.values) {
                            for (x, y) in a.iter().zip(b) {
                                assert_eq!(
                                    x.to_bits(),
                                    y.to_bits(),
                                    "shards {num_shards}, threads {threads}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn group_rows_tracks_predicate() {
        let t = student_table();
        let q = GroupByQuery::new(vec![ScalarExpr::col("college")], vec![AggExpr::avg("gpa")])
            .with_predicate(Predicate::cmp("gpa", CmpOp::Ge, 3.5));
        let r = &q.execute(&t).unwrap()[0];
        let sci = r.group_position(&[KeyAtom::from("Science")]).unwrap();
        assert_eq!(r.group_rows[sci], 2);
    }
}

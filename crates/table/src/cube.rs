//! `WITH CUBE` grouping-set expansion.

/// All grouping sets for a cube over `num_dims` dimensions, ordered like the
/// paper's example — the full set first, then subsets in decreasing size,
/// ending with the empty (full-table) set:
/// `CUBE(A, B)` → `[A,B], [A], [B], []`.
pub fn grouping_sets(num_dims: usize) -> Vec<Vec<usize>> {
    assert!(num_dims <= 16, "cube over more than 16 dimensions is not supported");
    let mut sets: Vec<Vec<usize>> = (0..(1usize << num_dims))
        .map(|mask| (0..num_dims).filter(|d| mask >> d & 1 == 1).collect())
        .collect();
    // Decreasing size; ties broken by lexicographic dim order for stability.
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dims_matches_paper_example() {
        assert_eq!(grouping_sets(2), vec![vec![0, 1], vec![0], vec![1], vec![]]);
    }

    #[test]
    fn zero_dims() {
        assert_eq!(grouping_sets(0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn one_dim() {
        assert_eq!(grouping_sets(1), vec![vec![0], vec![]]);
    }

    #[test]
    fn three_dims_count_and_order() {
        let sets = grouping_sets(3);
        assert_eq!(sets.len(), 8);
        assert_eq!(sets[0], vec![0, 1, 2]);
        assert_eq!(sets[7], Vec::<usize>::new());
        // Sizes are non-increasing.
        for w in sets.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn all_sets_distinct() {
        let sets = grouping_sets(4);
        assert_eq!(sets.len(), 16);
        let mut sorted = sets.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }
}

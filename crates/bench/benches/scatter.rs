//! Benchmark: the two-phase parallel scatter that buckets rows by stratum
//! (per-partition histograms → exclusive prefix → parallel scatter) against
//! the sequential counting sort it replaces, plus the full stratified draw
//! it feeds. Thread-sweep results land in `BENCH_scatter.json` so the
//! speedup curve is tracked PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_core::StratifiedSample;
use cvopt_table::exec;
use cvopt_table::{ExecOptions, GroupIndex, ScalarExpr};

fn bench_scatter(c: &mut Criterion) {
    let table = fixtures::openaq_large();
    let exprs = [ScalarExpr::col("country"), ScalarExpr::col("parameter")];
    let index = GroupIndex::build(&table, &exprs).unwrap();
    let num_groups = index.num_groups();

    let mut group = c.benchmark_group("scatter");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| exec::bucket_rows_sequential(black_box(index.row_groups()), num_groups))
    });
    for threads in fixtures::THREAD_COUNTS {
        let options = ExecOptions::new(threads);
        group.bench_with_input(BenchmarkId::new("two_phase", threads), &options, |b, options| {
            b.iter(|| exec::bucket_rows(black_box(index.row_groups()), num_groups, options))
        });
    }

    // The consumer of the scatter: a full stratified draw at a 1% budget.
    let allocation: Vec<u64> = index.sizes().iter().map(|&n| (n / 100).max(1)).collect();
    for threads in fixtures::THREAD_COUNTS {
        let options = ExecOptions::new(threads);
        group.bench_with_input(BenchmarkId::new("draw", threads), &options, |b, options| {
            b.iter(|| StratifiedSample::draw(black_box(&index), &allocation, 7, options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);

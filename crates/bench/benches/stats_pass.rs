//! Benchmark: the one-pass statistics collection (the paper's "first pass"),
//! the group-index build it depends on, and their thread-scaling curves on
//! a ≥1M-row zipf table. Results land in `BENCH_stats_pass.json` /
//! `BENCH_stats_scaling.json` so the speedup is tracked PR over PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_core::StratumStatistics;
use cvopt_table::{ExecOptions, GroupIndex, ScalarExpr};

fn bench_stats(c: &mut Criterion) {
    let table = fixtures::openaq();
    let exprs = [ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")];
    let index = GroupIndex::build(&table, &exprs).unwrap();
    let columns = [ScalarExpr::col("value")];

    let mut group = c.benchmark_group("stats_pass");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(20);

    group.bench_function("group_index_build", |b| {
        b.iter(|| GroupIndex::build(black_box(&table), black_box(&exprs)).unwrap())
    });

    for threads in fixtures::THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("collect", threads), &threads, |b, &threads| {
            b.iter(|| {
                StratumStatistics::collect_parallel(
                    black_box(&table),
                    black_box(&index),
                    black_box(&columns),
                    threads,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Thread-scaling on the large zipf table: the partitioned statistics and
/// group-index passes must show a multi-thread speedup over sequential.
fn bench_stats_scaling(c: &mut Criterion) {
    let table = fixtures::openaq_large();
    let exprs = [ScalarExpr::col("country"), ScalarExpr::col("parameter")];
    let index = GroupIndex::build(&table, &exprs).unwrap();
    let columns = [ScalarExpr::col("value")];

    let mut group = c.benchmark_group("stats_scaling");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(10);

    for threads in fixtures::THREAD_COUNTS {
        let options = ExecOptions::new(threads);
        group.bench_with_input(
            BenchmarkId::new("group_index_build", threads),
            &options,
            |b, options| {
                b.iter(|| {
                    GroupIndex::build_with(black_box(&table), black_box(&exprs), options).unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("collect", threads), &options, |b, options| {
            b.iter(|| {
                StratumStatistics::collect_with(
                    black_box(&table),
                    black_box(&index),
                    black_box(&columns),
                    options,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stats, bench_stats_scaling);
criterion_main!(benches);

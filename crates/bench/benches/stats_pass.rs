//! Benchmark: the one-pass statistics collection (the paper's "first pass"),
//! sequential vs multi-threaded, and the group-index build it depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_core::StratumStatistics;
use cvopt_table::{GroupIndex, ScalarExpr};

fn bench_stats(c: &mut Criterion) {
    let table = fixtures::openaq();
    let exprs =
        [ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")];
    let index = GroupIndex::build(&table, &exprs).unwrap();
    let columns = [ScalarExpr::col("value")];

    let mut group = c.benchmark_group("stats_pass");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(20);

    group.bench_function("group_index_build", |b| {
        b.iter(|| GroupIndex::build(black_box(&table), black_box(&exprs)).unwrap())
    });

    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("collect", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    StratumStatistics::collect_parallel(
                        black_box(&table),
                        black_box(&index),
                        black_box(&columns),
                        threads,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);

//! Benchmark: end-to-end sample construction per method — the paper's
//! Table 6 "precompute" column. Uniform needs one scan; the stratified
//! methods (CS, RL, CVOPT) need a statistics pass plus the drawing pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_baselines::paper_methods;
use cvopt_bench::fixtures;
use cvopt_core::{QuerySpec, SamplingProblem};

fn bench_end_to_end(c: &mut Criterion) {
    let table = fixtures::openaq();
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter", "unit"]).aggregate("value"),
        table.num_rows() / 100,
    );

    let mut group = c.benchmark_group("precompute_table6");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(10);

    for method in paper_methods() {
        group.bench_with_input(BenchmarkId::from_parameter(method.name()), &method, |b, method| {
            b.iter(|| method.draw(black_box(&table), black_box(&problem), 1).unwrap())
        });
    }

    // The full-table query baseline these samples amortize against.
    let query = cvopt_table::sql::compile(
        "SELECT country, parameter, unit, AVG(value) FROM t GROUP BY country, parameter, unit",
    )
    .unwrap();
    group.bench_function("full_table_query", |b| {
        b.iter(|| black_box(&query).execute(black_box(&table)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

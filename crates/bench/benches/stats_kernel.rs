//! Benchmark: the lane-merge slice kernel behind the statistics pass —
//! the scalar Welford chain vs. the [`AggState::update_slice`] lane kernel
//! on a dense 1M-value column, and the kernelized statistics collection
//! swept over thread counts. Results land in `BENCH_stats_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_core::StratumStatistics;
use cvopt_table::agg::AggState;
use cvopt_table::{ExecOptions, GroupIndex, ScalarExpr};

fn bench_stats_kernel(c: &mut Criterion) {
    let values: Vec<f64> =
        (0..fixtures::SCALING_ROWS).map(|i| (i as f64 * 0.37).sin() * 100.0).collect();

    let mut group = c.benchmark_group("stats_kernel");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.sample_size(20);

    group.bench_function("welford_scalar", |b| {
        b.iter(|| {
            let mut state = AggState::default();
            for &v in black_box(&values) {
                state.update(v);
            }
            state
        })
    });
    group.bench_function("welford_lanes", |b| {
        b.iter(|| {
            let mut state = AggState::default();
            state.update_slice(black_box(&values));
            state
        })
    });

    // The kernel's real consumer: the per-stratum statistics pass on the
    // large zipf table, swept over thread counts.
    let table = fixtures::openaq_large();
    let exprs = [ScalarExpr::col("country"), ScalarExpr::col("parameter")];
    let index = GroupIndex::build(&table, &exprs).unwrap();
    let columns = [ScalarExpr::col("value")];
    group.sample_size(10);
    for threads in fixtures::THREAD_COUNTS {
        let options = ExecOptions::new(threads);
        group.bench_with_input(BenchmarkId::new("collect", threads), &options, |b, options| {
            b.iter(|| {
                StratumStatistics::collect_with(
                    black_box(&table),
                    black_box(&index),
                    black_box(&columns),
                    options,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stats_kernel);
criterion_main!(benches);

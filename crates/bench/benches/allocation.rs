//! Benchmark: the allocation solvers — β computation, the box-constrained
//! √β solve (ℓ2), and the CVOPT-INF binary search (ℓ∞) — across stratum
//! counts. These are the only "new" costs CVOPT adds over simpler samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cvopt_core::alloc::{linf_allocation, sqrt_allocation};
use cvopt_core::{StratumStatistics, VarianceKind};
use cvopt_table::agg::AggState;

/// Synthetic per-stratum statistics without building a table.
fn synthetic_stats(strata: usize) -> (StratumStatistics, Vec<f64>) {
    let mut states = Vec::with_capacity(strata);
    let mut populations = Vec::with_capacity(strata);
    let mut alphas = Vec::with_capacity(strata);
    for i in 0..strata {
        let mut s = AggState::default();
        let mean = 1.0 + (i % 97) as f64;
        let spread = 0.1 + (i % 13) as f64;
        // Three points are enough to pin count/mean/m2.
        s.update(mean - spread);
        s.update(mean);
        s.update(mean + spread);
        states.push(vec![s]);
        populations.push(10 + ((i * 7919) % 10_000) as u64);
        let cv = spread / mean;
        alphas.push(cv * cv);
    }
    (StratumStatistics { column_names: vec!["x".into()], states, populations }, alphas)
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for strata in [100usize, 1_000, 10_000] {
        let (stats, alphas) = synthetic_stats(strata);
        let budget = (stats.populations.iter().sum::<u64>() / 100).max(1);

        group.bench_with_input(BenchmarkId::new("sqrt_l2", strata), &strata, |b, _| {
            b.iter(|| sqrt_allocation(black_box(&alphas), black_box(&stats.populations), budget, 1))
        });
        group.bench_with_input(BenchmarkId::new("linf", strata), &strata, |b, _| {
            b.iter(|| {
                linf_allocation(black_box(&stats), 0, budget, 1, VarianceKind::Sample).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);

//! Benchmark: reservoir algorithms — Vitter's R vs Li's L (the ablation
//! behind defaulting to Algorithm L), Floyd's distinct sampler, and the
//! weighted (Efraimidis–Spirakis) reservoir used by Sample+Seek.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_core::sample::reservoir::{sample_distinct, Reservoir};
use cvopt_core::sample::weighted::WeightedReservoir;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STREAM: u32 = 1_000_000;

fn bench_reservoir(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservoir");
    group.throughput(Throughput::Elements(STREAM as u64));
    group.sample_size(20);

    for k in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("algorithm_l", k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut r = Reservoir::new(k);
                for i in 0..STREAM {
                    r.offer(black_box(i), &mut rng);
                }
                r.into_items()
            })
        });
        group.bench_with_input(BenchmarkId::new("algorithm_r", k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut r = Reservoir::new_algorithm_r(k);
                for i in 0..STREAM {
                    r.offer(black_box(i), &mut rng);
                }
                r.into_items()
            })
        });
        group.bench_with_input(BenchmarkId::new("weighted_a_res", k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let mut r = WeightedReservoir::new(k);
                for i in 0..STREAM {
                    r.offer(black_box(i), 1.0 + (i % 10) as f64, &mut rng);
                }
                r.into_items()
            })
        });
    }

    group.bench_function("floyd_distinct_10k_of_1m", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            sample_distinct(&mut rng, STREAM as u64, 10_000)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reservoir);
criterion_main!(benches);

//! Benchmark: answering queries from a sample (the paper's "query
//! processing" column of Table 6) — this is the latency a user actually
//! sees per query once the sample is materialized.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_core::{estimate, CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_table::sql;

fn bench_estimation(c: &mut Criterion) {
    let table = fixtures::openaq();
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter", "unit"]).aggregate("value"),
        table.num_rows() / 100,
    );
    let sample = CvOptSampler::new(problem).with_seed(1).sample(&table).unwrap().sample;

    let mut group = c.benchmark_group("estimation");
    group.throughput(Throughput::Elements(sample.len() as u64));

    let avg =
        sql::compile("SELECT country, parameter, AVG(value) FROM t GROUP BY country, parameter")
            .unwrap();
    group.bench_function("avg_from_1pct_sample", |b| {
        b.iter(|| estimate::estimate(black_box(&sample), black_box(&avg)).unwrap())
    });

    let filtered = sql::compile(
        "SELECT country, AVG(value), COUNT(*) FROM t \
         WHERE HOUR(local_time) BETWEEN 0 AND 11 GROUP BY country",
    )
    .unwrap();
    group.bench_function("filtered_from_1pct_sample", |b| {
        b.iter(|| estimate::estimate(black_box(&sample), black_box(&filtered)).unwrap())
    });

    let cube = sql::compile(
        "SELECT country, parameter, SUM(value) FROM t GROUP BY country, parameter WITH CUBE",
    )
    .unwrap();
    group.bench_function("cube_from_1pct_sample", |b| {
        b.iter(|| estimate::estimate(black_box(&sample), black_box(&cube)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);

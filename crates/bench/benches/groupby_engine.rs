//! Benchmark: the exact group-by executor (ground-truth path) — plain
//! group-by, predicate + group-by, and the shared-scan cube.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_table::{sql, AggExpr, CmpOp, GroupByQuery, Predicate, ScalarExpr};

fn bench_groupby(c: &mut Criterion) {
    let table = fixtures::openaq();
    let mut group = c.benchmark_group("groupby_engine");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(20);

    let simple = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::avg("value")],
    );
    group.bench_function("avg_by_country_parameter", |b| {
        b.iter(|| black_box(&simple).execute(black_box(&table)).unwrap())
    });

    let filtered = GroupByQuery::new(
        vec![ScalarExpr::col("country")],
        vec![AggExpr::avg("value"), AggExpr::count()],
    )
    .with_predicate(
        Predicate::cmp("parameter", CmpOp::Eq, "co")
            .and(Predicate::between(ScalarExpr::hour("local_time"), 6i64, 18i64)),
    );
    group.bench_function("filtered_multi_agg", |b| {
        b.iter(|| black_box(&filtered).execute(black_box(&table)).unwrap())
    });

    let cube = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::sum("value")],
    )
    .with_cube();
    group.bench_function("cube_two_dims", |b| {
        b.iter(|| black_box(&cube).execute(black_box(&table)).unwrap())
    });

    group.bench_function("sql_parse_plan_execute", |b| {
        b.iter(|| {
            sql::run(
                black_box(&table),
                "SELECT country, parameter, AVG(value) FROM t \
                 WHERE HOUR(local_time) BETWEEN 0 AND 11 GROUP BY country, parameter",
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_groupby);
criterion_main!(benches);

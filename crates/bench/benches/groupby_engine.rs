//! Benchmark: the exact group-by executor (ground-truth path) — plain
//! group-by, predicate + group-by, the shared-scan cube, and the
//! thread-scaling curve of the partitioned executor on a ≥1M-row zipf
//! table (tracked in `BENCH_groupby_scaling.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cvopt_bench::fixtures;
use cvopt_table::{sql, AggExpr, CmpOp, ExecOptions, GroupByQuery, Predicate, ScalarExpr};

fn bench_groupby(c: &mut Criterion) {
    let table = fixtures::openaq();
    let mut group = c.benchmark_group("groupby_engine");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(20);

    let simple = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::avg("value")],
    );
    group.bench_function("avg_by_country_parameter", |b| {
        b.iter(|| black_box(&simple).execute(black_box(&table)).unwrap())
    });

    let filtered = GroupByQuery::new(
        vec![ScalarExpr::col("country")],
        vec![AggExpr::avg("value"), AggExpr::count()],
    )
    .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "co").and(Predicate::between(
        ScalarExpr::hour("local_time"),
        6i64,
        18i64,
    )));
    group.bench_function("filtered_multi_agg", |b| {
        b.iter(|| black_box(&filtered).execute(black_box(&table)).unwrap())
    });

    let cube = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::sum("value")],
    )
    .with_cube();
    group.bench_function("cube_two_dims", |b| {
        b.iter(|| black_box(&cube).execute(black_box(&table)).unwrap())
    });

    group.bench_function("sql_parse_plan_execute", |b| {
        b.iter(|| {
            sql::run(
                black_box(&table),
                "SELECT country, parameter, AVG(value) FROM t \
                 WHERE HOUR(local_time) BETWEEN 0 AND 11 GROUP BY country, parameter",
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Thread-scaling of the partitioned executor (group-by + predicate scan)
/// on the large zipf table.
fn bench_groupby_scaling(c: &mut Criterion) {
    let table = fixtures::openaq_large();
    let mut group = c.benchmark_group("groupby_scaling");
    group.throughput(Throughput::Elements(table.num_rows() as u64));
    group.sample_size(10);

    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::avg("value"), AggExpr::count()],
    );
    let filtered = GroupByQuery::new(vec![ScalarExpr::col("country")], vec![AggExpr::avg("value")])
        .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "co"));

    for threads in fixtures::THREAD_COUNTS {
        let options = ExecOptions::new(threads);
        group.bench_with_input(
            BenchmarkId::new("avg_count_two_dims", threads),
            &options,
            |b, options| {
                b.iter(|| black_box(&query).execute_with(black_box(&table), options).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("filtered_avg", threads),
            &options,
            |b, options| {
                b.iter(|| black_box(&filtered).execute_with(black_box(&table), options).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_groupby, bench_groupby_scaling);
criterion_main!(benches);

//! Record **deterministic counters** into `BENCH_counters.json` (same JSON
//! shape as the wall-clock bench snapshots; the `median_ns` field carries
//! the counter value — a count, not nanoseconds).
//!
//! Counters capture behavior that must not silently regress but that
//! wall-clock benches cannot gate on a shared runner: how many statistics
//! passes a canned serving workload costs (the cache-reuse economy of
//! paper §6.3), sampled row counts and strata under fixed seeds, and the
//! partition plan shapes. Every value is a pure function of the code — no
//! RNG beyond the vendored seeded generators, no clock — so the bench-diff
//! CI job can **fail** on a >10% change here while keeping wall-clock
//! diffs advisory.
//!
//! Honors `CVOPT_BENCH_DIR` like the bench harness.

use cvopt_core::{Engine, ExecOptions, QueryMode, ShardedTable};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::exec::partition_rows;

/// Rows for the serving-workload fixture: large enough that the default
/// auto threshold routes to the approximate path, small enough for CI.
const WORKLOAD_ROWS: usize = 100_000;

/// A canned serving session: three statements over one table, the first
/// two sharing a derived problem (same grouping and value column, new
/// predicate), so the cache economy must hold at 2 statistics passes.
const STATEMENTS: [&str; 3] = [
    "SELECT country, AVG(value) FROM openaq GROUP BY country",
    "SELECT country, AVG(value) FROM openaq WHERE parameter = 'pm25' GROUP BY country",
    "SELECT parameter, AVG(value), SUM(value) FROM openaq GROUP BY parameter",
];

fn main() {
    let table = generate_openaq(&OpenAqConfig::with_rows(WORKLOAD_ROWS));
    let mut counters: Vec<(String, u64)> = Vec::new();

    let mut engine = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    engine.register("openaq", table.clone());
    let mut per_statement: Vec<(u64, u64)> = Vec::new();
    for stmt in &STATEMENTS {
        let answer = engine.query(stmt, QueryMode::Approximate).expect("workload statement");
        per_statement.push((
            answer.report.sample_rows.expect("approximate answers sample") as u64,
            answer.report.strata.expect("approximate answers stratify") as u64,
        ));
    }
    counters.push(("stats_passes/serving_workload".into(), engine.stats_passes()));
    // The cache economy itself: statements 1 and 2 share a derived
    // problem, so the workload must cost exactly one hit and two misses.
    counters.push(("cache_hits/serving_workload".into(), engine.cache_hits()));
    counters.push(("cache_misses/serving_workload".into(), engine.cache_misses()));
    counters.push(("cached_samples/serving_workload".into(), engine.cached_samples() as u64));
    let (sample_rows, strata) = *per_statement.last().expect("statements ran");
    counters.push(("sample_rows/last_statement".into(), sample_rows));
    counters.push(("strata/last_statement".into(), strata));

    // The sharded path must cost the same number of passes and draw the
    // same per-statement sample sizes as the single-table path.
    let mut sharded = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    sharded.register("openaq", ShardedTable::split(&table, 3).expect("split"));
    for (stmt, &(expected_rows, _)) in STATEMENTS.iter().zip(&per_statement) {
        let answer = sharded.query(stmt, QueryMode::Approximate).expect("workload statement");
        assert_eq!(
            answer.report.sample_rows.expect("sampled") as u64,
            expected_rows,
            "sharded preparation drew a different sample size for {stmt}"
        );
    }
    counters.push(("stats_passes/sharded_workload".into(), sharded.stats_passes()));

    // The reuse economy: prepare one fine-grained sample explicitly, then
    // answer coarser / predicate-filtered statements. Every one must come
    // from the reuse planner — zero additional draws.
    let mut reuse = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    reuse.register("openaq", table);
    reuse
        .prepare(
            "openaq",
            cvopt_core::SamplingProblem::single(
                cvopt_core::QuerySpec::group_by(&["country", "parameter", "unit"])
                    .aggregate("value"),
                2_000,
            ),
        )
        .expect("prepare the fine sample");
    for stmt in [
        "SELECT country, AVG(value) FROM openaq GROUP BY country",
        "SELECT parameter, AVG(value) FROM openaq WHERE country = 'IN' GROUP BY parameter",
        "SELECT country, unit, AVG(value), SUM(value) FROM openaq GROUP BY country, unit",
    ] {
        let answer = reuse.query(stmt, QueryMode::Approximate).expect("reuse statement");
        assert!(
            matches!(answer.report.reuse, cvopt_core::ReuseInfo::Derived { .. }),
            "expected a derived answer for {stmt}, got {:?}",
            answer.report.reuse
        );
    }
    assert_eq!(reuse.stats_passes(), 1, "the prepared sample must answer everything");
    counters.push(("reuse_hits/reuse_workload".into(), reuse.reuse_hits()));
    counters.push(("draws_avoided/reuse_workload".into(), reuse.draws_avoided()));
    counters.push(("stats_passes/reuse_workload".into(), reuse.stats_passes()));

    // The ingest economy: a windowed table under streaming append keeps
    // its durable sample maintained without re-scanning history (one
    // statistics pass total), and the maintained sample answers exactly
    // like one prepared fresh over the final table with the rescaled
    // budget (paper §5's stratified design, held under appends).
    let stream_rows = 20_000;
    let full = generate_openaq(&OpenAqConfig::with_rows(WORKLOAD_ROWS + stream_rows));
    let base = full.take(&(0..WORKLOAD_ROWS).collect::<Vec<_>>());
    let problem = |budget| {
        cvopt_core::SamplingProblem::single(
            cvopt_core::QuerySpec::group_by(&["country"]).aggregate("value"),
            budget,
        )
    };
    let mut live = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    live.register_windowed("openaq", base, "local_time").expect("windowed registration");
    live.prepare("openaq", problem(2_000)).expect("prepare the durable sample");
    for start in (WORKLOAD_ROWS..WORKLOAD_ROWS + stream_rows).step_by(5_000) {
        let batch = full.take(&(start..start + 5_000).collect::<Vec<_>>());
        live.ingest("openaq", &batch).expect("ingest batch");
    }
    assert_eq!(live.stats_passes(), 1, "maintenance must not re-scan the table");
    // Budget scales with the table: 2 000 rows at 100k grows to 2 400 at
    // 120k, and the maintained sample must be bit-identical to preparing
    // that budget fresh — compared through full query answers.
    let mut fresh = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    fresh.register_windowed("openaq", full.clone(), "local_time").expect("windowed registration");
    fresh.prepare("openaq", problem(2_400)).expect("prepare fresh at the rescaled budget");
    let stmt = "SELECT country, AVG(value) FROM openaq GROUP BY country";
    let maintained = live.query(stmt, QueryMode::Approximate).expect("query the live engine");
    let reference = fresh.query(stmt, QueryMode::Approximate).expect("query the fresh engine");
    assert_eq!(
        format!("{:?}", maintained.results),
        format!("{:?}", reference.results),
        "maintained sample must answer like a fresh prepare"
    );
    counters.push(("ingested_rows/ingest_workload".into(), live.ingested_rows()));
    counters.push(("ingest_batches/ingest_workload".into(), live.ingest_batches()));
    counters.push(("maintained_samples/ingest_workload".into(), live.maintained_samples() as u64));
    counters.push(("stats_passes/ingest_workload".into(), live.stats_passes()));
    counters.push((
        "sample_rows/ingest_workload".into(),
        maintained.report.sample_rows.expect("sampled") as u64,
    ));
    // Retention: rotate at the midpoint of the seeded time range; the
    // retired count is a pure function of the generator.
    let cutoff = match full.column_by_name("local_time").expect("window column") {
        cvopt_table::Column::Timestamp(v) => {
            let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
            min + (max - min) / 2
        }
        other => panic!("local_time must be a timestamp, got {other:?}"),
    };
    live.rotate("openaq", cutoff).expect("rotate the window");
    counters.push(("rows_retired/ingest_workload".into(), live.rows_retired()));

    // The join path: a fact-to-dimension join answers exactly, and its
    // output size — matched rows surviving the inner join, with duplicate
    // dimension keys fanned out — is a pure function of the generator.
    // The sharded fact side must answer byte-identically.
    let fact = generate_openaq(&OpenAqConfig::with_rows(WORKLOAD_ROWS));
    let mut dim = cvopt_table::TableBuilder::new(&[
        ("country", cvopt_table::DataType::Str),
        ("region", cvopt_table::DataType::Str),
    ]);
    // Cover a prefix of the country domain only, so the inner join drops
    // the tail; C03 appears twice, so its rows fan out.
    for i in 0..12usize {
        dim.push_row(&[
            cvopt_table::Value::str(cvopt_datagen::openaq::country_code(i)),
            cvopt_table::Value::str(["emea", "apac", "amer"][i % 3]),
        ])
        .expect("dim row");
    }
    dim.push_row(&[
        cvopt_table::Value::str(cvopt_datagen::openaq::country_code(3)),
        cvopt_table::Value::str("dup"),
    ])
    .expect("dup dim row");
    let dim = dim.finish();
    let join_stmt = "SELECT region, SUM(value), COUNT(*) FROM openaq \
                     JOIN regions ON openaq.country = regions.country GROUP BY region";
    let mut join_engine = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    join_engine.register("openaq", fact.clone());
    join_engine.register("regions", dim.clone());
    let joined = join_engine.query(join_stmt, QueryMode::Exact).expect("join workload");
    let mut join_sharded = Engine::new().with_seed(7).with_exec(ExecOptions::sequential());
    join_sharded.register("openaq", ShardedTable::split(&fact, 3).expect("split"));
    join_sharded.register("regions", dim);
    let sharded_join = join_sharded.query(join_stmt, QueryMode::Exact).expect("sharded join");
    assert_eq!(
        format!("{:?}", joined.results),
        format!("{:?}", sharded_join.results),
        "sharded fact side must join byte-identically"
    );
    counters
        .push(("join_rows/join_workload".into(), joined.results[0].group_rows.iter().sum::<u64>()));
    counters.push(("join_groups/join_workload".into(), joined.results[0].num_groups() as u64));

    // Plan shapes: fixed by the row counts alone.
    counters.push(("partitions/workload_table".into(), partition_rows(WORKLOAD_ROWS).len() as u64));
    counters.push((
        "partitions/1M".into(),
        partition_rows(cvopt_bench::fixtures::SCALING_ROWS).len() as u64,
    ));

    write_snapshot(&counters);
}

/// Write the counters in the bench harness's snapshot shape (`median_ns`
/// carries the counter value so `bench_diff` needs no second parser).
fn write_snapshot(counters: &[(String, u64)]) {
    let mut body = String::from("{\n  \"group\": \"counters\",\n  \"benchmarks\": {\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        body.push_str(&format!(
            "    \"{name}\": {{\"median_ns\": {value}, \"mean_ns\": {value}, \"iters\": 1}}{comma}\n"
        ));
    }
    body.push_str("  }\n}\n");
    let dir = std::env::var("CVOPT_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join("BENCH_counters.json");
    std::fs::write(&path, body).expect("write BENCH_counters.json");
    println!("wrote {} ({} counters)", path.display(), counters.len());
}

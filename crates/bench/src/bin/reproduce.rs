//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [IDS...] [--scale small|standard|large] [--out DIR]
//!
//!   IDS       experiment ids (default: all)
//!             figure1 table4 figure2 figure3 figure4 table5 figure5
//!             table6 figure6 ablation-capping ablation-variance
//!             ablation-minalloc
//!   --scale   dataset size preset (default: standard)
//!   --out     also write <id>.txt/.md/.csv under DIR
//! ```
//!
//! Examples:
//! ```text
//! cargo run --release -p cvopt-bench --bin reproduce -- figure1
//! cargo run --release -p cvopt-bench --bin reproduce -- all --scale small
//! cargo run --release -p cvopt-bench --bin reproduce -- table4 --out results
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use cvopt_eval::experiments::{self, ALL_IDS};
use cvopt_eval::scale::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [IDS...] [--scale small|standard|large] [--out DIR]\n\
         known ids: all {}",
        ALL_IDS.join(" ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::standard();
    let mut out_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let name = args.next().unwrap_or_else(|| usage());
                scale = Scale::from_name(&name).unwrap_or_else(|| usage());
            }
            "--out" => {
                out_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "# cvopt reproduce — scale: {} OpenAQ rows / {} Bikes rows, {} reps\n",
        scale.openaq_rows, scale.bikes_rows, scale.reps
    );
    let mut failures = 0;
    for id in &ids {
        let t0 = Instant::now();
        match experiments::run_by_id(id, &scale) {
            Ok(report) => {
                println!("{}", report.to_text());
                println!("  [{} completed in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
                if let Some(dir) = &out_dir {
                    let write = |ext: &str, body: String| {
                        let path = format!("{dir}/{id}.{ext}");
                        std::fs::File::create(&path)
                            .and_then(|mut f| f.write_all(body.as_bytes()))
                            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
                    };
                    write("txt", report.to_text());
                    write("md", report.to_markdown());
                    write("csv", report.to_csv());
                }
            }
            Err(e) => {
                eprintln!("{id} FAILED: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Diff two directories of `BENCH_*.json` snapshots (as written by the
//! bench harness) and fail when a median regresses.
//!
//! ```text
//! bench_diff <base_dir> <new_dir> [--threshold 0.10]
//! ```
//!
//! Prints a readable table of every benchmark present in either snapshot:
//! base median, new median, and the delta. Exits non-zero when any
//! benchmark's median is more than `threshold` slower than the base
//! (default 10%). Missing counterparts are reported but never fail the
//! run, so adding or retiring benchmarks stays cheap. CI runs this as an
//! advisory step (the 1-CPU dev container shows only spawn overhead; real
//! tracking needs the multi-core runner — see ROADMAP "Bench tracking").

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// `group/benchmark` → median nanoseconds, parsed from every
/// `BENCH_*.json` under `dir`.
fn load_medians(dir: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let group = name.trim_start_matches("BENCH_").trim_end_matches(".json").to_string();
        for (id, median) in parse_benchmarks(&text) {
            out.insert(format!("{group}/{id}"), median);
        }
    }
    out
}

/// Extract `(benchmark_id, median_ns)` pairs from the harness's JSON. The
/// format is machine-written and line-oriented, so a targeted scan is
/// enough — no JSON dependency needed.
fn parse_benchmarks(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some(quote) = rest.find('"') else { continue };
        let id = &rest[..quote];
        let Some(median_at) = line.find("\"median_ns\":") else { continue };
        let tail = line[median_at + "\"median_ns\":".len()..].trim_start();
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        if let Ok(median) = digits.parse::<f64>() {
            out.push((id.to_string(), median));
        }
    }
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut dirs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            threshold = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threshold needs a number, e.g. --threshold 0.10");
                std::process::exit(2);
            });
            i += 2;
        } else {
            dirs.push(&args[i]);
            i += 1;
        }
    }
    let [base_dir, new_dir] = dirs[..] else {
        eprintln!("usage: bench_diff <base_dir> <new_dir> [--threshold 0.10]");
        return ExitCode::from(2);
    };

    let base = load_medians(Path::new(base_dir));
    let new = load_medians(Path::new(new_dir));
    if new.is_empty() {
        eprintln!("no BENCH_*.json found in {new_dir}");
        return ExitCode::from(2);
    }

    let mut names: Vec<&String> = base.keys().chain(new.keys()).collect();
    names.sort();
    names.dedup();

    let header = ["benchmark", "base", "new", "delta", "status"];
    let mut rows: Vec<[String; 5]> = Vec::new();
    let mut regressions = 0usize;
    for name in names {
        let row = match (base.get(name), new.get(name)) {
            (Some(&b), Some(&n)) => {
                let delta = (n - b) / b;
                let status = if delta > threshold {
                    regressions += 1;
                    "REGRESSED"
                } else if delta < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                [
                    name.clone(),
                    fmt_ns(b),
                    fmt_ns(n),
                    format!("{:+.1}%", delta * 100.0),
                    status.to_string(),
                ]
            }
            (None, Some(&n)) => [name.clone(), "-".into(), fmt_ns(n), "-".into(), "new".into()],
            (Some(&b), None) => [name.clone(), fmt_ns(b), "-".into(), "-".into(), "removed".into()],
            (None, None) => unreachable!("name came from one of the maps"),
        };
        rows.push(row);
    }

    let mut widths = header.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String; 5]| {
        let line: Vec<String> = cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    };
    print_row(&header.map(String::from));
    print_row(&widths.map(|w| "-".repeat(w)));
    for row in &rows {
        print_row(row);
    }

    if regressions > 0 {
        eprintln!(
            "\n{regressions} benchmark(s) regressed more than {:.0}% on the median",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("\nno median regression beyond {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    }
}

//! Diff two directories of `BENCH_*.json` snapshots (as written by the
//! bench harness) and fail when a median regresses.
//!
//! ```text
//! bench_diff <base_dir> <new_dir> [--threshold 0.10]
//! ```
//!
//! Prints a readable table of every benchmark present in either snapshot:
//! base median, new median, and the delta. Exits non-zero when any
//! benchmark's median is more than `threshold` slower than the base
//! (default 10%). Missing counterparts are reported but never fail the
//! run, so adding or retiring benchmarks stays cheap. CI runs this as an
//! advisory step (the 1-CPU dev container shows only spawn overhead; real
//! tracking needs the multi-core runner — see ROADMAP "Bench tracking").

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// `group/benchmark` → median nanoseconds, parsed from every
/// `BENCH_*.json` under `dir`.
fn load_medians(dir: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let group = name.trim_start_matches("BENCH_").trim_end_matches(".json").to_string();
        for (id, median) in parse_benchmarks(&text) {
            out.insert(format!("{group}/{id}"), median);
        }
    }
    out
}

/// Extract `(benchmark_id, median_ns)` pairs from the harness's JSON. The
/// format is machine-written and line-oriented, so a targeted scan is
/// enough — no JSON dependency needed.
fn parse_benchmarks(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some(quote) = rest.find('"') else { continue };
        let id = &rest[..quote];
        let Some(median_at) = line.find("\"median_ns\":") else { continue };
        let tail = line[median_at + "\"median_ns\":".len()..].trim_start();
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        if let Ok(median) = digits.parse::<f64>() {
            out.push((id.to_string(), median));
        }
    }
    out
}

/// Build the report rows for every benchmark in either snapshot and count
/// regressions. A benchmark regresses when its median is **strictly more
/// than** `threshold` slower than the base (`delta > threshold`): exactly
/// at the threshold is still "ok". Benchmarks present in only one snapshot
/// are reported as "new"/"removed" and never fail the run.
fn diff_rows(
    base: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    threshold: f64,
) -> (Vec<[String; 5]>, usize) {
    let mut names: Vec<&String> = base.keys().chain(new.keys()).collect();
    names.sort();
    names.dedup();

    let mut rows: Vec<[String; 5]> = Vec::new();
    let mut regressions = 0usize;
    for name in names {
        let row = match (base.get(name), new.get(name)) {
            (Some(&b), Some(&n)) => {
                let delta = (n - b) / b;
                // A non-positive base or non-finite delta means the
                // comparison is meaningless (corrupt snapshot, degenerate
                // benchmark); flag it rather than let NaN slide through
                // the threshold checks as "ok".
                let status = if b <= 0.0 || !delta.is_finite() {
                    regressions += 1;
                    "INVALID"
                } else if delta > threshold {
                    regressions += 1;
                    "REGRESSED"
                } else if delta < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                [
                    name.clone(),
                    fmt_ns(b),
                    fmt_ns(n),
                    format!("{:+.1}%", delta * 100.0),
                    status.to_string(),
                ]
            }
            (None, Some(&n)) => [name.clone(), "-".into(), fmt_ns(n), "-".into(), "new".into()],
            (Some(&b), None) => [name.clone(), fmt_ns(b), "-".into(), "-".into(), "removed".into()],
            (None, None) => unreachable!("name came from one of the maps"),
        };
        rows.push(row);
    }
    (rows, regressions)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut dirs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            threshold = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threshold needs a number, e.g. --threshold 0.10");
                std::process::exit(2);
            });
            i += 2;
        } else {
            dirs.push(&args[i]);
            i += 1;
        }
    }
    let [base_dir, new_dir] = dirs[..] else {
        eprintln!("usage: bench_diff <base_dir> <new_dir> [--threshold 0.10]");
        return ExitCode::from(2);
    };

    let base = load_medians(Path::new(base_dir));
    let new = load_medians(Path::new(new_dir));
    if new.is_empty() {
        eprintln!("no BENCH_*.json found in {new_dir}");
        return ExitCode::from(2);
    }

    let header = ["benchmark", "base", "new", "delta", "status"];
    let (rows, regressions) = diff_rows(&base, &new, threshold);

    let mut widths = header.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String; 5]| {
        let line: Vec<String> = cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    };
    print_row(&header.map(String::from));
    print_row(&widths.map(|w| "-".repeat(w)));
    for row in &rows {
        print_row(row);
    }

    if regressions > 0 {
        eprintln!(
            "\n{regressions} benchmark(s) regressed more than {:.0}% on the median",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("\nno median regression beyond {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn status_of(rows: &[[String; 5]], name: &str) -> String {
        rows.iter().find(|r| r[0] == name).expect("row present")[4].clone()
    }

    #[test]
    fn missing_directory_loads_empty() {
        let got = load_medians(Path::new("/definitely/not/a/bench/dir"));
        assert!(got.is_empty());
    }

    #[test]
    fn load_medians_parses_harness_json() {
        let dir =
            std::env::temp_dir().join(format!("cvopt_bench_diff_load_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_demo.json"),
            concat!(
                "{\n",
                "  \"group\": \"demo\",\n",
                "  \"benchmarks\": {\n",
                "    \"draw/4\": {\"median_ns\": 1500, \"mean_ns\": 1600, \"iters\": 10}\n",
                "  }\n",
                "}\n",
            ),
        )
        .unwrap();
        // Non-BENCH files are ignored.
        std::fs::write(dir.join("notes.json"), "{}").unwrap();
        let got = load_medians(&dir);
        assert_eq!(got, medians(&[("demo/draw/4", 1500.0)]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn new_benchmark_is_reported_but_never_fails() {
        let base = medians(&[("scatter/two_phase/1", 100.0)]);
        let new = medians(&[("scatter/two_phase/1", 100.0), ("scatter/two_phase/4", 30.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 0);
        assert_eq!(status_of(&rows, "scatter/two_phase/4"), "new");
        assert_eq!(status_of(&rows, "scatter/two_phase/1"), "ok");
    }

    #[test]
    fn removed_benchmark_is_reported_but_never_fails() {
        let base = medians(&[("old/bench", 100.0)]);
        let new = medians(&[("kept/bench", 100.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 0);
        assert_eq!(status_of(&rows, "old/bench"), "removed");
    }

    #[test]
    fn exactly_at_threshold_is_not_a_regression() {
        // delta == threshold must stay "ok": the gate is strictly greater.
        let base = medians(&[("g/b", 100.0)]);
        let new = medians(&[("g/b", 110.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 0, "10% on a 10% threshold is at, not over");
        assert_eq!(status_of(&rows, "g/b"), "ok");
    }

    #[test]
    fn just_over_threshold_regresses() {
        let base = medians(&[("g/b", 100.0)]);
        let new = medians(&[("g/b", 110.2)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 1);
        assert_eq!(status_of(&rows, "g/b"), "REGRESSED");
    }

    #[test]
    fn zero_base_median_cannot_slide_through_as_ok() {
        // (n - 0) / 0 is inf (or NaN when n is also 0); both must be
        // flagged instead of failing every threshold comparison silently.
        let base = medians(&[("g/b", 0.0), ("g/c", 0.0)]);
        let new = medians(&[("g/b", 1000.0), ("g/c", 0.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 2);
        assert_eq!(status_of(&rows, "g/b"), "INVALID");
        assert_eq!(status_of(&rows, "g/c"), "INVALID");
    }

    #[test]
    fn improvement_beyond_threshold_is_flagged_improved() {
        let base = medians(&[("g/b", 100.0)]);
        let new = medians(&[("g/b", 80.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, 0);
        assert_eq!(status_of(&rows, "g/b"), "improved");
    }
}

//! Diff two directories of `BENCH_*.json` snapshots (as written by the
//! bench harness and the `counters` bin) and fail when a **deterministic
//! counter** regresses.
//!
//! ```text
//! bench_diff <base_dir> <new_dir> [--threshold 0.10]
//! ```
//!
//! Prints a readable table of every benchmark present in either snapshot:
//! base value, new value, and the delta. Entries are split into two
//! classes by group:
//!
//! * **Counters** (`counters/...`, from `BENCH_counters.json`): pure
//!   functions of the code — statistics passes, sample sizes, plan shapes.
//!   Any counter more than `threshold` away from its base (default 10%,
//!   **either direction** — a sample size dropping is as suspicious as a
//!   pass count rising) makes the run exit non-zero. These are the CI
//!   gate.
//! * **Wall-clock** (everything else): regressions are reported as
//!   `ADVISORY` and never fail the run — CI runners are shared and noisy,
//!   and committed snapshots come from developer machines, so a red time
//!   is a prompt to look, not a verdict.
//!
//! Missing counterparts are reported but never fail the run, so adding or
//! retiring benchmarks stays cheap.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// Group prefix of the deterministic-counter snapshot.
const COUNTER_PREFIX: &str = "counters/";

/// A row is a deterministic counter (the CI gate) when it comes from the
/// counter snapshot group (`counters/...`) or from a `counters/...` id
/// inside another group (`serving/counters/...`, written by the
/// `cvopt-load` harness). Everything else diffs as advisory wall-clock
/// time.
fn is_counter(name: &str) -> bool {
    name.starts_with(COUNTER_PREFIX) || name.contains("/counters/")
}

/// `group/benchmark` → median nanoseconds (or counter value), parsed from
/// every `BENCH_*.json` under `dir`.
fn load_medians(dir: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let group = name.trim_start_matches("BENCH_").trim_end_matches(".json").to_string();
        for (id, median) in parse_benchmarks(&text) {
            out.insert(format!("{group}/{id}"), median);
        }
    }
    out
}

/// Extract `(benchmark_id, median_ns)` pairs from the harness's JSON. The
/// format is machine-written and line-oriented, so a targeted scan is
/// enough — no JSON dependency needed.
fn parse_benchmarks(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some(quote) = rest.find('"') else { continue };
        let id = &rest[..quote];
        let Some(median_at) = line.find("\"median_ns\":") else { continue };
        let tail = line[median_at + "\"median_ns\":".len()..].trim_start();
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
        if let Ok(median) = digits.parse::<f64>() {
            out.push((id.to_string(), median));
        }
    }
    out
}

/// Per-class regression tally for one diff run.
#[derive(Debug, Default, PartialEq, Eq)]
struct Regressions {
    /// Deterministic-counter regressions (and invalid counter rows): gate.
    gating: usize,
    /// Wall-clock regressions (and invalid time rows): advisory only.
    advisory: usize,
}

/// Build the report rows for every benchmark in either snapshot and tally
/// regressions per class. A benchmark regresses when its value is
/// **strictly more than** `threshold` above the base (`delta > threshold`):
/// exactly at the threshold is still "ok". Benchmarks present in only one
/// snapshot are reported as "new"/"removed" and never fail the run.
fn diff_rows(
    base: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    threshold: f64,
) -> (Vec<[String; 5]>, Regressions) {
    let mut names: Vec<&String> = base.keys().chain(new.keys()).collect();
    names.sort();
    names.dedup();

    let mut rows: Vec<[String; 5]> = Vec::new();
    let mut regressions = Regressions::default();
    for name in names {
        let gating = is_counter(name);
        let row = match (base.get(name), new.get(name)) {
            (Some(&b), Some(&n)) => {
                let delta = (n - b) / b;
                // A zero base is legitimate for counters (an eviction
                // count of 0 is a pinned expectation, not corruption):
                // unchanged-at-zero is "ok". Any *change* off a
                // non-positive base, or a non-finite delta, still flags —
                // NaN must not slide through the threshold checks.
                let status = if b <= 0.0 && n == b {
                    "ok"
                } else if b <= 0.0 || !delta.is_finite() {
                    if gating {
                        regressions.gating += 1;
                    } else {
                        regressions.advisory += 1;
                    }
                    "INVALID"
                } else if gating && delta.abs() > threshold {
                    // Counters gate in BOTH directions: a sample size or
                    // strata count silently dropping is an accuracy
                    // regression, not an improvement.
                    regressions.gating += 1;
                    "CHANGED"
                } else if delta > threshold {
                    regressions.advisory += 1;
                    "ADVISORY"
                } else if delta < -threshold {
                    "improved"
                } else {
                    "ok"
                };
                [
                    name.clone(),
                    fmt_value(name, b),
                    fmt_value(name, n),
                    format!("{:+.1}%", delta * 100.0),
                    status.to_string(),
                ]
            }
            (None, Some(&n)) => {
                [name.clone(), "-".into(), fmt_value(name, n), "-".into(), "new".into()]
            }
            (Some(&b), None) => {
                [name.clone(), fmt_value(name, b), "-".into(), "-".into(), "removed".into()]
            }
            (None, None) => unreachable!("name came from one of the maps"),
        };
        rows.push(row);
    }
    (rows, regressions)
}

/// Counters render as plain counts; everything else as a duration.
fn fmt_value(name: &str, value: f64) -> String {
    if is_counter(name) {
        format!("{value:.0}")
    } else {
        fmt_ns(value)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 0.10f64;
    let mut dirs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            threshold = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threshold needs a number, e.g. --threshold 0.10");
                std::process::exit(2);
            });
            i += 2;
        } else {
            dirs.push(&args[i]);
            i += 1;
        }
    }
    let [base_dir, new_dir] = dirs[..] else {
        eprintln!("usage: bench_diff <base_dir> <new_dir> [--threshold 0.10]");
        return ExitCode::from(2);
    };

    let base = load_medians(Path::new(base_dir));
    let new = load_medians(Path::new(new_dir));
    if new.is_empty() {
        eprintln!("no BENCH_*.json found in {new_dir}");
        return ExitCode::from(2);
    }

    let header = ["benchmark", "base", "new", "delta", "status"];
    let (rows, regressions) = diff_rows(&base, &new, threshold);

    let mut widths = header.map(str::len);
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let print_row = |cells: &[String; 5]| {
        let line: Vec<String> = cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
        println!("{}", line.join("  "));
    };
    print_row(&header.map(String::from));
    print_row(&widths.map(|w| "-".repeat(w)));
    for row in &rows {
        print_row(row);
    }

    if regressions.advisory > 0 {
        println!(
            "\nnote: {} wall-clock time(s) moved more than {:.0}% — advisory only; \
             CI runners are shared and committed snapshots come from developer \
             machines, so treat these as a prompt to re-measure, not a gate",
            regressions.advisory,
            threshold * 100.0
        );
    }
    if regressions.gating > 0 {
        eprintln!(
            "\n{} deterministic counter(s) changed more than {:.0}%",
            regressions.gating,
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("\nno deterministic counter change beyond {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn status_of(rows: &[[String; 5]], name: &str) -> String {
        rows.iter().find(|r| r[0] == name).expect("row present")[4].clone()
    }

    #[test]
    fn missing_directory_loads_empty() {
        let got = load_medians(Path::new("/definitely/not/a/bench/dir"));
        assert!(got.is_empty());
    }

    #[test]
    fn load_medians_parses_harness_json() {
        let dir =
            std::env::temp_dir().join(format!("cvopt_bench_diff_load_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_demo.json"),
            concat!(
                "{\n",
                "  \"group\": \"demo\",\n",
                "  \"benchmarks\": {\n",
                "    \"draw/4\": {\"median_ns\": 1500, \"mean_ns\": 1600, \"iters\": 10}\n",
                "  }\n",
                "}\n",
            ),
        )
        .unwrap();
        // Non-BENCH files are ignored.
        std::fs::write(dir.join("notes.json"), "{}").unwrap();
        let got = load_medians(&dir);
        assert_eq!(got, medians(&[("demo/draw/4", 1500.0)]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn new_benchmark_is_reported_but_never_fails() {
        let base = medians(&[("scatter/two_phase/1", 100.0)]);
        let new = medians(&[("scatter/two_phase/1", 100.0), ("scatter/two_phase/4", 30.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions::default());
        assert_eq!(status_of(&rows, "scatter/two_phase/4"), "new");
        assert_eq!(status_of(&rows, "scatter/two_phase/1"), "ok");
    }

    #[test]
    fn removed_benchmark_is_reported_but_never_fails() {
        let base = medians(&[("old/bench", 100.0)]);
        let new = medians(&[("kept/bench", 100.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions::default());
        assert_eq!(status_of(&rows, "old/bench"), "removed");
    }

    #[test]
    fn exactly_at_threshold_is_not_a_regression() {
        // delta == threshold must stay "ok": the gate is strictly greater.
        let base = medians(&[("counters/stats_passes", 10.0)]);
        let new = medians(&[("counters/stats_passes", 11.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions.gating, 0, "10% on a 10% threshold is at, not over");
        assert_eq!(status_of(&rows, "counters/stats_passes"), "ok");
    }

    #[test]
    fn counter_regression_gates() {
        // A serving workload that starts paying an extra statistics pass
        // must fail the diff.
        let base = medians(&[("counters/stats_passes/serving_workload", 2.0)]);
        let new = medians(&[("counters/stats_passes/serving_workload", 3.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions.gating, 1);
        assert_eq!(regressions.advisory, 0);
        assert_eq!(status_of(&rows, "counters/stats_passes/serving_workload"), "CHANGED");
    }

    #[test]
    fn counter_drop_gates_too() {
        // A sample size silently halving is an accuracy regression, not an
        // improvement; counters gate on moves in either direction.
        let base = medians(&[("counters/sample_rows/last_statement", 1000.0)]);
        let new = medians(&[("counters/sample_rows/last_statement", 500.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions.gating, 1);
        assert_eq!(status_of(&rows, "counters/sample_rows/last_statement"), "CHANGED");
    }

    #[test]
    fn serving_counter_ids_gate_inside_their_group() {
        // The cvopt-load snapshot joins as `serving/counters/...`: the
        // embedded counters gate, the latency rows stay advisory.
        let base = medians(&[
            ("serving/counters/phase1/cache_hits", 80.0),
            ("serving/latency/p50", 1_000_000.0),
        ]);
        let new = medians(&[
            ("serving/counters/phase1/cache_hits", 60.0),
            ("serving/latency/p50", 2_000_000.0),
        ]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions { gating: 1, advisory: 1 });
        assert_eq!(status_of(&rows, "serving/counters/phase1/cache_hits"), "CHANGED");
        assert_eq!(status_of(&rows, "serving/latency/p50"), "ADVISORY");
    }

    #[test]
    fn wall_clock_regression_is_advisory_only() {
        let base = medians(&[("scatter/draw/4", 100.0)]);
        let new = medians(&[("scatter/draw/4", 150.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions.gating, 0, "wall-clock times must not gate");
        assert_eq!(regressions.advisory, 1);
        assert_eq!(status_of(&rows, "scatter/draw/4"), "ADVISORY");
    }

    #[test]
    fn mixed_classes_tally_separately() {
        let base = medians(&[("counters/sample_rows", 1000.0), ("stats_pass/collect", 100.0)]);
        let new = medians(&[("counters/sample_rows", 1500.0), ("stats_pass/collect", 200.0)]);
        let (_, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions { gating: 1, advisory: 1 });
    }

    #[test]
    fn zero_base_median_cannot_slide_through_as_ok() {
        // (n - 0) / 0 is inf: a change off a zero base must be flagged
        // instead of failing every threshold comparison silently. An
        // *unchanged* zero is a pinned expectation (0 evictions under an
        // unbounded cache) and stays ok.
        let base = medians(&[("counters/g/b", 0.0), ("counters/g/z", 0.0), ("g/c", 0.0)]);
        let new = medians(&[("counters/g/b", 1000.0), ("counters/g/z", 0.0), ("g/c", 0.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions { gating: 1, advisory: 0 });
        assert_eq!(status_of(&rows, "counters/g/b"), "INVALID");
        assert_eq!(status_of(&rows, "counters/g/z"), "ok");
        assert_eq!(status_of(&rows, "g/c"), "ok");
    }

    #[test]
    fn wall_clock_improvement_is_flagged_improved() {
        let base = medians(&[("g/b", 100.0)]);
        let new = medians(&[("g/b", 80.0)]);
        let (rows, regressions) = diff_rows(&base, &new, 0.10);
        assert_eq!(regressions, Regressions::default());
        assert_eq!(status_of(&rows, "g/b"), "improved");
    }

    #[test]
    fn counters_render_as_counts_not_durations() {
        assert_eq!(fmt_value("counters/stats_passes", 2.0), "2");
        assert_eq!(fmt_value("serving/counters/phase2/cache_evictions", 58.0), "58");
        assert_eq!(fmt_value("scatter/draw/4", 1500.0), "1.500µs");
    }
}

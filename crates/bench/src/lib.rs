//! # cvopt-bench
//!
//! Criterion benchmarks for the hot paths (statistics pass, allocation,
//! reservoirs, group-by engine, estimation, end-to-end sampling) and the
//! [`reproduce`](../src/bin/reproduce.rs) binary that regenerates every
//! table and figure of the paper. See `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for recorded outputs.

/// Shared fixture sizes for benches, kept here so all benches agree.
pub mod fixtures {
    use cvopt_datagen::{generate_openaq, OpenAqConfig};
    use cvopt_table::Table;

    /// Rows used by micro benches.
    pub const BENCH_ROWS: usize = 200_000;

    /// Rows used by the thread-scaling benches (spans 16+ partitions of
    /// the execution layer).
    pub const SCALING_ROWS: usize = 1_048_576;

    /// Thread counts every scaling bench sweeps, so `BENCH_*.json` tracks
    /// the speedup curve PR over PR.
    pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

    /// The standard bench table.
    pub fn openaq() -> Table {
        generate_openaq(&OpenAqConfig::with_rows(BENCH_ROWS))
    }

    /// A ≥1M-row zipf-skewed table for multi-thread scaling runs.
    pub fn openaq_large() -> Table {
        generate_openaq(&OpenAqConfig::with_rows(SCALING_ROWS))
    }
}

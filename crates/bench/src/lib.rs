//! # cvopt-bench
//!
//! Criterion benchmarks for the hot paths (statistics pass, allocation,
//! reservoirs, group-by engine, estimation, end-to-end sampling) and the
//! [`reproduce`](../src/bin/reproduce.rs) binary that regenerates every
//! table and figure of the paper. See `DESIGN.md` §4 for the experiment
//! index and `EXPERIMENTS.md` for recorded outputs.

/// Shared fixture sizes for benches, kept here so all benches agree.
pub mod fixtures {
    use cvopt_datagen::{generate_openaq, OpenAqConfig};
    use cvopt_table::Table;

    /// Rows used by micro benches.
    pub const BENCH_ROWS: usize = 200_000;

    /// The standard bench table.
    pub fn openaq() -> Table {
        generate_openaq(&OpenAqConfig::with_rows(BENCH_ROWS))
    }
}

//! # cvopt
//!
//! Umbrella crate for the CVOPT workspace — a Rust implementation of
//! *"Random Sampling for Group-By Queries"* (Nguyen et al., ICDE 2020)
//! grown into a parallel sampling system.
//!
//! Each member crate is re-exported under a short alias so downstream code
//! can depend on one crate:
//!
//! * [`table`] — columnar table engine, exact group-by executor, and the
//!   deterministic chunked-parallel execution layer ([`table::exec`]).
//! * [`core`] — the CVOPT sampler: statistics, allocation, stratified
//!   draw, estimation, streaming.
//! * [`serve`] — the HTTP serving layer: a shared engine behind a
//!   threaded accept-loop → bounded-queue → worker-pool pipeline.
//! * [`baselines`] — competing samplers (Uniform, CS, RL, Sample+Seek).
//! * [`datagen`] — seeded synthetic datasets (OpenAQ-like, bike-share).
//! * [`eval`] — the paper's experiment harness.

pub use cvopt_baselines as baselines;
pub use cvopt_core as core;
pub use cvopt_datagen as datagen;
pub use cvopt_eval as eval;
pub use cvopt_serve as serve;
pub use cvopt_table as table;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_work() {
        use crate::table::{DataType, TableBuilder, Value};
        let mut b = TableBuilder::new(&[("g", DataType::Str)]);
        b.push_row(&[Value::str("x")]).unwrap();
        assert_eq!(b.finish().num_rows(), 1);
    }
}
